//! The recorded performance baseline: publish + audit wall-clock on the
//! synthetic Adult table, serial reference engine vs. the parallel batched
//! engine, written to `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline            # 10k + 100k rows
//! cargo run --release -p bgkanon-bench --bin baseline -- --smoke # 1k rows (CI)
//! ```
//!
//! `--incremental` switches to the **incremental republication** benchmark,
//! written to `BENCH_incremental.json`: a [`PublishSession`](bgkanon::PublishSession) absorbs
//! repeated 1% deltas (½% deletes + ½% inserts) and each `session.apply` +
//! cached re-audit is timed against a from-scratch publish + audit of the
//! identical final table, with both sides verified bit-identical before
//! any number is recorded.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --incremental
//! cargo run --release -p bgkanon-bench --bin baseline -- --incremental --smoke
//! ```
//!
//! `--estimate` switches to the **P̂pri estimation** benchmark, written to
//! `BENCH_estimate.json`: the dense all-pairs reference engine vs the
//! sparse compact-support engine (single-threaded and `Auto`), plus
//! [`PriorEstimator::refresh`] vs full re-estimation under the clustered /
//! scattered 1% delta workloads — every engine pair verified bit-identical
//! before its timing is recorded.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --estimate
//! cargo run --release -p bgkanon-bench --bin baseline -- --estimate --smoke
//! ```
//!
//! `--concurrent` switches to the **multi-tenant serving** benchmark,
//! written to `BENCH_concurrent.json`: N tenants × M reader/writer threads
//! through a [`SessionHub`](bgkanon::SessionHub) (writers applying scripted
//! churn deltas, readers serving audit requests through the hub's shared
//! stamp caches) against the serial one-session loop — one thread, serial
//! reference engines, a fresh audit per release. Every tenant's final
//! table, publication and audit report are verified bit-identical between
//! the two phases before any throughput number is recorded.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --concurrent
//! cargo run --release -p bgkanon-bench --bin baseline -- --concurrent --smoke
//! ```
//!
//! `--recovery` switches to the **durable cold-start** benchmark, written
//! to `BENCH_recovery.json`: durable [`SessionHub`](bgkanon::SessionHub)s
//! absorb scripted churn, are dropped, and re-opened cold — timing
//! `SessionHub::open` under WAL-only replay vs checkpoint + WAL-tail
//! resume across tenant-count × WAL-length size points. Every re-opened
//! tenant must publish bit-identically to the hub that was dropped before
//! any number is recorded.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --recovery
//! cargo run --release -p bgkanon-bench --bin baseline -- --recovery --smoke
//! ```
//!
//! `--scale` switches to the **layout A/B scale** benchmark, written to
//! `BENCH_scale.json`: the full serial publish → prior-estimate → audit
//! pipeline (plus isolated group-by-QI and estimator-fold passes) at 1M
//! and 10M rows, run once on the columnar table and once on
//! [`Table::to_layout(RowMajor)`](bgkanon::data::Table::to_layout) of the
//! *same* table — identical engine code, equal thread count, only the
//! physical layout differs. Partitions, risks, group-by maps and folds are
//! verified bit-identical between the two lanes before any number is
//! recorded.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --scale
//! cargo run --release -p bgkanon-bench --bin baseline -- --scale --smoke
//! ```
//!
//! `--fleet` switches to the **bounded-memory fleet** benchmark, written
//! to `BENCH_fleet.json`: 10k small tenants (400 under `--smoke`) in a
//! durable hub, driven by a seeded Zipfian access script of interleaved
//! audits and deltas. One unbounded reference lane establishes the
//! operation-by-operation output digests and the unbounded resident-byte
//! peak; budget lanes then replay the *identical* script under
//! `max_resident_bytes` ceilings of ½, ¼ and ⅛ of that peak, recording
//! peak resident bytes, hit rates, eviction/rehydration counts and audit
//! throughput. Every lane's digests must match the reference bit-for-bit
//! — eviction is a memory policy, never a semantics.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --fleet
//! cargo run --release -p bgkanon-bench --bin baseline -- --fleet --smoke
//! ```
//!
//! With `--strategies` it benchmarks every anonymization strategy behind
//! the session API — Mondrian, bucketization, full-domain generalization —
//! refreshing through 1% deltas vs a from-scratch publish of the same
//! post-delta table, written to `BENCH_strategies.json`. Serial engines on
//! both sides, so the speedup isolates the retained-state advantage; every
//! step is verified bit-identical before its timing is recorded.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline -- --strategies
//! cargo run --release -p bgkanon-bench --bin baseline -- --strategies --smoke
//! ```
//!
//! Methodology:
//!
//! * **publish** — Mondrian under 10-anonymity (the partitioning cost the
//!   paper's Fig. 4(a) measures); the serial column runs the reference
//!   engine, the parallel column the work-stealing engine;
//! * **audit** — the full §V.A disclosure-risk audit of the published
//!   partition against the paper's two reference adversaries: the kernel
//!   `Adv(0.25·1)` (its prior model estimated once, outside the timed
//!   regions, and shared by both engines — the paper's Fig. 4 accounting
//!   excludes estimation, and it is identical work either way; the cost is
//!   still recorded in `estimate_ms`) and the constant-prior t-closeness
//!   adversary of §II.D, whose audit the batched engine collapses from one
//!   posterior per *row* to one per *group signature*;
//! * every timed section is the **minimum over `--reps N`** (default 3)
//!   runs, and both engines must produce bit-identical groups and risks —
//!   the run aborts otherwise, so the recorded speedup is never bought with
//!   drift.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bgkanon::data::{adult, Delta, DeltaBuilder, Layout, Parallelism, Table};
use bgkanon::knowledge::{Adversary, Bandwidth, FoldedTable, PriorEstimator, PriorModel};
use bgkanon::privacy::Auditor;
use bgkanon::stats::SmoothedJs;
use bgkanon::{Algorithm, Publisher};
use bgkanon_bench::report::Report;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// k of the published k-anonymity requirement.
const K: usize = 10;
/// Uniform bandwidth of the kernel auditing adversary.
const B_PRIME: f64 = 0.25;
/// Vulnerability threshold of the audit.
const THRESHOLD: f64 = 0.2;
/// Generator seed — the baseline must be reproducible.
const SEED: u64 = 42;

struct SizeResult {
    rows: usize,
    groups: usize,
    serial_publish_ms: f64,
    parallel_publish_ms: f64,
    estimate_ms: f64,
    serial_audit_kernel_ms: f64,
    parallel_audit_kernel_ms: f64,
    serial_audit_tcloseness_ms: f64,
    parallel_audit_tcloseness_ms: f64,
    vulnerable: usize,
}

impl SizeResult {
    fn serial_total_ms(&self) -> f64 {
        self.serial_publish_ms + self.serial_audit_kernel_ms + self.serial_audit_tcloseness_ms
    }

    fn parallel_total_ms(&self) -> f64 {
        self.parallel_publish_ms + self.parallel_audit_kernel_ms + self.parallel_audit_tcloseness_ms
    }

    fn speedup(&self) -> f64 {
        self.serial_total_ms() / self.parallel_total_ms()
    }
}

/// Wall-clock of `f`, in milliseconds.
fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Minimum wall-clock over `reps` runs, with the last run's value.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut value, mut best) = time_ms(&mut f);
    for _ in 1..reps {
        let (v, ms) = time_ms(&mut f);
        value = v;
        best = best.min(ms);
    }
    (value, best)
}

/// Audit with one adversary on both engines, asserting bit-identical risks.
/// Returns (serial_ms, parallel_ms, serial risks).
fn audit_both_engines(
    auditor: &Auditor,
    table: &Table,
    groups: &[Vec<usize>],
    reps: usize,
) -> (f64, f64, Vec<f64>) {
    let (serial_risks, serial_ms) = best_ms(reps, || {
        auditor.tuple_risks_with(table, groups, Parallelism::Serial)
    });
    let (parallel_risks, parallel_ms) = best_ms(reps, || {
        auditor.tuple_risks_with(table, groups, Parallelism::Auto)
    });
    for (row, (s, p)) in serial_risks.iter().zip(&parallel_risks).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "audit engines diverge at row {row}"
        );
    }
    (serial_ms, parallel_ms, serial_risks)
}

fn run_size(rows: usize, reps: usize) -> SizeResult {
    let table = adult::generate(rows, SEED);

    let serial_publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Serial);
    let parallel_publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Auto);

    let (serial_outcome, serial_publish_ms) = best_ms(reps, || {
        serial_publisher.publish(&table).expect("satisfiable")
    });
    let (parallel_outcome, parallel_publish_ms) = best_ms(reps, || {
        parallel_publisher.publish(&table).expect("satisfiable")
    });

    // The recorded speedup must never be bought with drift.
    let sg = serial_outcome.anonymized.groups();
    let pg = parallel_outcome.anonymized.groups();
    assert_eq!(sg.len(), pg.len(), "engines disagree on group count");
    for (a, b) in sg.iter().zip(pg) {
        assert_eq!(a.rows, b.rows, "engines disagree on a group's rows");
    }
    let groups = serial_outcome.anonymized.row_groups();

    let measure: Arc<dyn bgkanon::stats::BeliefDistance> = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));

    // Kernel adversary: one shared prior model, estimated outside the timed
    // regions.
    let (kernel_auditor, estimate_ms) = time_ms(|| {
        let adversary = Arc::new(Adversary::kernel(
            &table,
            Bandwidth::uniform(B_PRIME, table.qi_count()).expect("positive bandwidth"),
        ));
        Auditor::new(adversary, Arc::clone(&measure))
    });
    let (serial_audit_kernel_ms, parallel_audit_kernel_ms, kernel_risks) =
        audit_both_engines(&kernel_auditor, &table, &groups, reps);
    let vulnerable = kernel_risks
        .iter()
        .filter(|r| !r.is_nan() && **r > THRESHOLD)
        .count();

    // Constant-prior t-closeness adversary (§II.D).
    let tcl_auditor = Auditor::new(Arc::new(Adversary::t_closeness(&table)), measure);
    let (serial_audit_tcloseness_ms, parallel_audit_tcloseness_ms, _) =
        audit_both_engines(&tcl_auditor, &table, &groups, reps);

    SizeResult {
        rows,
        groups: sg.len(),
        serial_publish_ms,
        parallel_publish_ms,
        estimate_ms,
        serial_audit_kernel_ms,
        parallel_audit_kernel_ms,
        serial_audit_tcloseness_ms,
        parallel_audit_tcloseness_ms,
        vulnerable,
    }
}

fn json(results: &[SizeResult], threads: usize, smoke: bool, reps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"baseline\",\n");
    out.push_str(&format!("  \"requirement\": \"{K}-anonymity\",\n"));
    out.push_str(&format!("  \"adversary_bandwidth\": {B_PRIME},\n"));
    out.push_str(&format!("  \"audit_threshold\": {THRESHOLD},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"groups\": {}, \"vulnerable\": {}, \
             \"serial_publish_ms\": {:.3}, \"parallel_publish_ms\": {:.3}, \
             \"estimate_ms\": {:.3}, \
             \"serial_audit_kernel_ms\": {:.3}, \"parallel_audit_kernel_ms\": {:.3}, \
             \"serial_audit_tcloseness_ms\": {:.3}, \"parallel_audit_tcloseness_ms\": {:.3}, \
             \"serial_total_ms\": {:.3}, \"parallel_total_ms\": {:.3}, \
             \"speedup\": {:.3}, \"identical_output\": true}}{}\n",
            r.rows,
            r.groups,
            r.vulnerable,
            r.serial_publish_ms,
            r.parallel_publish_ms,
            r.estimate_ms,
            r.serial_audit_kernel_ms,
            r.parallel_audit_kernel_ms,
            r.serial_audit_tcloseness_ms,
            r.parallel_audit_tcloseness_ms,
            r.serial_total_ms(),
            r.parallel_total_ms(),
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured delta step of the incremental benchmark.
struct DeltaStep {
    apply_ms: f64,
    inc_audit_ms: f64,
    full_publish_ms: f64,
    full_audit_ms: f64,
}

impl DeltaStep {
    fn speedup(&self) -> f64 {
        (self.full_publish_ms + self.full_audit_ms) / (self.apply_ms + self.inc_audit_ms)
    }
}

/// How a delta's rows are distributed over the QI space.
///
/// * `Scattered` — uniform random churn, the worst case for a retained
///   tree: every delta row dirties its own root-to-leaf path;
/// * `Clustered` — a cohort update localized in a narrow age band (bulk
///   arrivals/departures share demographics), the case incremental
///   republication is built for: the delta descends through a handful of
///   subtrees and the rest of the tree is untouched.
#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Scattered,
    Clustered,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Scattered => "scattered",
            Workload::Clustered => "clustered",
        }
    }
}

/// Build one 1%-churn delta over `table` (`delta_half` deletes + an equal
/// number of inserts, so the table size stays stable as in a steady-state
/// replacement workload). Shared by the incremental and estimation
/// benchmarks so both measure the same churn patterns.
fn workload_delta(
    table: &Table,
    rng: &mut SmallRng,
    workload: Workload,
    delta_half: usize,
    donor_seed: u64,
) -> Delta {
    // Width (in age codes, domain 0..74) of the clustered cohort band.
    const BAND: u32 = 2;
    let n = table.len();
    let age_domain = table.schema().qi_attribute(0).domain_size();
    let mut builder = DeltaBuilder::new(Arc::clone(table.schema()));
    let donors = adult::generate(delta_half, donor_seed);
    match workload {
        Workload::Scattered => {
            let mut chosen = std::collections::HashSet::with_capacity(delta_half);
            while chosen.len() < delta_half {
                chosen.insert(rng.gen_range(0..n));
            }
            for &row in &chosen {
                builder.delete(row);
            }
            for r in 0..delta_half {
                builder
                    .insert_codes(&donors.qi(r), donors.sensitive_value(r))
                    .expect("donors share the schema");
            }
        }
        Workload::Clustered => {
            // One replacement cohort: retire records inside a narrow
            // age band and admit newcomers with the same ages but fresh
            // remaining attributes (a periodic cohort refresh). Age
            // marginals are preserved exactly, so churn stays local to
            // the band's subtrees. Bands the sampling leaves empty are
            // re-drawn — a no-op delta must never count as a measured
            // republication step.
            let mut ages = Vec::with_capacity(delta_half);
            let mut rows_in_band = Vec::new();
            for _attempt in 0..64 {
                let band_lo = rng.gen_range(0..age_domain.saturating_sub(BAND).max(1));
                for row in 0..n {
                    if ages.len() == delta_half {
                        break;
                    }
                    let age = table.qi_value(row, 0);
                    if age >= band_lo && age < band_lo + BAND && rng.gen_bool(0.5) {
                        rows_in_band.push(row);
                        ages.push(age);
                    }
                }
                if !ages.is_empty() {
                    break;
                }
            }
            assert!(!ages.is_empty(), "no populated age band found in 64 draws");
            for &row in &rows_in_band {
                builder.delete(row);
            }
            for (r, &age) in ages.iter().enumerate() {
                let mut qi = donors.qi(r).to_vec();
                qi[0] = age;
                builder
                    .insert_codes(&qi, donors.sensitive_value(r))
                    .expect("donors share the schema");
            }
        }
    }
    builder.build()
}

/// Incremental results for one table size and workload.
struct IncrementalResult {
    rows: usize,
    workload: Workload,
    /// Mean rows actually churned per delta (deletes + inserts); the
    /// clustered workload can fall short of the nominal 1% when the chosen
    /// band is sparsely populated.
    delta_rows: usize,
    groups: usize,
    open_ms: f64,
    estimate_ms: f64,
    first_audit_ms: f64,
    steps: Vec<DeltaStep>,
}

impl IncrementalResult {
    fn mean(&self, f: impl Fn(&DeltaStep) -> f64) -> f64 {
        self.steps.iter().map(f).sum::<f64>() / self.steps.len() as f64
    }

    /// Speedup of the mean incremental step over the mean full republish.
    fn speedup_mean(&self) -> f64 {
        (self.mean(|s| s.full_publish_ms) + self.mean(|s| s.full_audit_ms))
            / (self.mean(|s| s.apply_ms) + self.mean(|s| s.inc_audit_ms))
    }

    fn speedup_best(&self) -> f64 {
        self.steps
            .iter()
            .map(DeltaStep::speedup)
            .fold(0.0, f64::max)
    }
}

/// Run the incremental republication benchmark at one size and workload:
/// `reps` successive 1% deltas through one session, each checked
/// bit-identical against a from-scratch publish + audit of the same final
/// table.
fn run_incremental(rows: usize, reps: usize, workload: Workload) -> IncrementalResult {
    let table = adult::generate(rows, SEED);
    let publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Auto);
    let measure: Arc<dyn bgkanon::stats::BeliefDistance> = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));
    // One kernel adversary, estimated once from the base table and reused
    // across every release on both sides (the paper's Fig. 1 accounting).
    let (auditor, estimate_ms) = time_ms(|| {
        Auditor::new(
            Arc::new(Adversary::kernel(
                &table,
                Bandwidth::uniform(B_PRIME, table.qi_count()).expect("positive bandwidth"),
            )),
            measure,
        )
    });
    let (mut session, open_ms) = time_ms(|| publisher.open(&table).expect("satisfiable"));
    let (_, first_audit_ms) = time_ms(|| session.audit_with(&auditor, THRESHOLD));

    // 1% churn per delta: exactly 0.5% deletes + an equal number of
    // inserts, so the table size — and with it the median positions the
    // retained splits hinge on — stays stable, as in a steady-state
    // replacement workload.
    let delta_half = (rows / 200).max(1);
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xdead_beef);
    let mut steps = Vec::with_capacity(reps);
    let mut churned = 0usize;
    for rep in 0..reps {
        let delta = workload_delta(
            session.table(),
            &mut rng,
            workload,
            delta_half,
            SEED + 1000 + rep as u64,
        );
        churned += delta.len();

        let (outcome, apply_ms) = time_ms(|| session.apply(&delta).expect("satisfiable delta"));
        let (inc_report, inc_audit_ms) = time_ms(|| session.audit_with(&auditor, THRESHOLD));

        let (full_outcome, full_publish_ms) =
            time_ms(|| publisher.publish(session.table()).expect("satisfiable"));
        let (full_report, full_audit_ms) =
            time_ms(|| full_outcome.audit_with(session.table(), &auditor, THRESHOLD));

        // The recorded speedup must never be bought with drift.
        let inc_groups = outcome.anonymized.groups();
        let full_groups = full_outcome.anonymized.groups();
        assert_eq!(inc_groups.len(), full_groups.len(), "group count drift");
        for (a, b) in inc_groups.iter().zip(full_groups) {
            assert_eq!(a.rows, b.rows, "group membership drift");
            assert_eq!(a.ranges, b.ranges, "range drift");
        }
        for (row, (a, b)) in inc_report.risks.iter().zip(&full_report.risks).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "risk drift at row {row}");
        }

        steps.push(DeltaStep {
            apply_ms,
            inc_audit_ms,
            full_publish_ms,
            full_audit_ms,
        });
    }
    IncrementalResult {
        rows,
        workload,
        delta_rows: churned / reps,
        groups: session.group_count(),
        open_ms,
        estimate_ms,
        first_audit_ms,
        steps,
    }
}

fn incremental_json(
    results: &[IncrementalResult],
    threads: usize,
    smoke: bool,
    reps: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"incremental\",\n");
    out.push_str(&format!("  \"requirement\": \"{K}-anonymity\",\n"));
    out.push_str(&format!("  \"adversary_bandwidth\": {B_PRIME},\n"));
    out.push_str(&format!("  \"audit_threshold\": {THRESHOLD},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"workload\": \"{}\", \"delta_rows\": {}, \"groups\": {}, \
             \"open_ms\": {:.3}, \"estimate_ms\": {:.3}, \"first_audit_ms\": {:.3}, \
             \"apply_ms_mean\": {:.3}, \"inc_audit_ms_mean\": {:.3}, \
             \"full_publish_ms_mean\": {:.3}, \"full_audit_ms_mean\": {:.3}, \
             \"incremental_total_ms_mean\": {:.3}, \"full_total_ms_mean\": {:.3}, \
             \"speedup_mean\": {:.3}, \"speedup_best\": {:.3}, \
             \"identical_output\": true}}{}\n",
            r.rows,
            r.workload.name(),
            r.delta_rows,
            r.groups,
            r.open_ms,
            r.estimate_ms,
            r.first_audit_ms,
            r.mean(|s| s.apply_ms),
            r.mean(|s| s.inc_audit_ms),
            r.mean(|s| s.full_publish_ms),
            r.mean(|s| s.full_audit_ms),
            r.mean(|s| s.apply_ms + s.inc_audit_ms),
            r.mean(|s| s.full_publish_ms + s.full_audit_ms),
            r.speedup_mean(),
            r.speedup_best(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// How the estimation benchmark's 1% delta is distributed over the QI
/// space. The kernel engine cares about locality in **kernel-support**
/// space, which is not the same as the partition tree's notion:
///
/// * `Clustered` — a demographic cohort: rows churned at a **small set of
///   distinct QI profiles** inside one narrow age band (bulk
///   arrival/departure of records sharing coarse demographics). The
///   kernel-support analogue of the incremental bench's cohort: the delta
///   touches few distinct points, so the dirty kernel neighborhood stays
///   small — the case `refresh` is built for;
/// * `AgeBand` — `BENCH_incremental.json`'s "clustered" workload (narrow
///   age band, fresh random demographics). Tree-local but **not**
///   kernel-local: hundreds of distinct QI points change, so their united
///   kernel neighborhoods cover a large share of the table;
/// * `Scattered` — uniform random churn, the worst case for both engines.
#[derive(Clone, Copy, PartialEq)]
enum EstimateWorkload {
    Clustered,
    AgeBand,
    Scattered,
}

impl EstimateWorkload {
    fn name(self) -> &'static str {
        match self {
            EstimateWorkload::Clustered => "clustered",
            EstimateWorkload::AgeBand => "age_band",
            EstimateWorkload::Scattered => "scattered",
        }
    }
}

/// Build the estimation bench's `Clustered` delta: retire **every** row of
/// the highest-multiplicity QI profiles inside the most populated narrow
/// age band (until ½% of the table is deleted) and admit the same number
/// of rows at those same profiles with fresh sensitive values. The churn
/// is 1% of the rows but touches only a handful of distinct QI points.
fn cohort_delta(table: &Table, delta_half: usize, donor_seed: u64) -> Delta {
    const BAND: u32 = 2;
    let groups = table.group_by_qi();
    let age_domain = table.schema().qi_attribute(0).domain_size();
    // Most populated width-BAND age window.
    let mut rows_at_age = vec![0usize; age_domain as usize];
    for (qi, rows) in &groups {
        rows_at_age[qi[0] as usize] += rows.len();
    }
    let band_lo = (0..age_domain.saturating_sub(BAND - 1).max(1))
        .max_by_key(|&lo| {
            (lo..lo + BAND)
                .map(|a| rows_at_age[a as usize])
                .sum::<usize>()
        })
        .expect("non-empty age domain");
    // Band profiles, most populated first (deterministic tie-break on QI).
    let mut profiles: Vec<(&Box<[u32]>, &Vec<usize>)> = groups
        .iter()
        .filter(|(qi, _)| qi[0] >= band_lo && qi[0] < band_lo + BAND)
        .collect();
    profiles.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));

    let donors = adult::generate(delta_half.max(1), donor_seed);
    let mut builder = DeltaBuilder::new(Arc::clone(table.schema()));
    let mut taken = 0usize;
    for (qi, rows) in profiles {
        if taken >= delta_half {
            break;
        }
        let take = rows.len().min(delta_half - taken);
        for &row in &rows[..take] {
            builder.delete(row);
        }
        for _ in 0..take {
            builder
                .insert_codes(qi, donors.sensitive_value(taken % donors.len()))
                .expect("profile rows share the schema");
            taken += 1;
        }
    }
    builder.build()
}

/// Estimation results for one refresh workload.
struct RefreshResult {
    workload: EstimateWorkload,
    delta_rows: usize,
    refresh_ms: f64,
    reestimate_ms: f64,
}

/// Estimation engine results for one table size.
struct EstimateResult {
    rows: usize,
    distinct_points: usize,
    /// Mean per-attribute kernel-table density (fraction of nonzero
    /// weights) at the bench bandwidth.
    support_density: f64,
    dense_reference_ms: f64,
    sparse_ms: f64,
    sparse_parallel_ms: f64,
    refresh: Vec<RefreshResult>,
}

impl EstimateResult {
    fn sparse_speedup(&self) -> f64 {
        self.dense_reference_ms / self.sparse_ms
    }

    fn sparse_parallel_speedup(&self) -> f64 {
        self.dense_reference_ms / self.sparse_parallel_ms
    }
}

/// Assert two prior models are bit-identical (the recorded speedups must
/// never be bought with drift).
fn assert_models_identical(a: &PriorModel, b: &PriorModel, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: model size drift");
    for (qi, p) in a.iter() {
        let q = b
            .prior(qi)
            .unwrap_or_else(|| panic!("{context}: missing prior"));
        for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: prior drift at {qi:?}");
        }
    }
    for (x, y) in a
        .table_distribution()
        .as_slice()
        .iter()
        .zip(b.table_distribution().as_slice())
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: table distribution drift"
        );
    }
}

/// Benchmark the P̂pri estimation engines at one size: the dense all-pairs
/// reference vs the sparse neighbor-bounded engine (single-threaded and
/// `Auto`), plus session `refresh` vs full re-estimation under the 1% delta
/// workloads — every comparison verified bit-identical before its timing is
/// recorded.
fn run_estimate(rows: usize, reps: usize) -> EstimateResult {
    let table = adult::generate(rows, SEED);
    let estimator = PriorEstimator::new(
        Arc::clone(table.schema()),
        Bandwidth::uniform(B_PRIME, table.qi_count()).expect("positive bandwidth"),
    );
    let density = estimator.support_density();
    let support_density = density.iter().sum::<f64>() / density.len() as f64;

    let (dense, dense_reference_ms) = best_ms(reps, || estimator.estimate_reference(&table));
    let (sparse, sparse_ms) = best_ms(reps, || {
        estimator.estimate_with(&table, Parallelism::threads(1))
    });
    let (parallel, sparse_parallel_ms) =
        best_ms(reps, || estimator.estimate_with(&table, Parallelism::Auto));
    assert_models_identical(&dense, &sparse, "dense vs sparse");
    assert_models_identical(&dense, &parallel, "dense vs sparse-parallel");

    // Session refresh vs full re-estimation under 1% churn.
    let delta_half = (rows / 200).max(1);
    let mut refresh = Vec::new();
    for workload in [
        EstimateWorkload::Clustered,
        EstimateWorkload::AgeBand,
        EstimateWorkload::Scattered,
    ] {
        let mut rng = SmallRng::seed_from_u64(SEED ^ 0xe571_ae11);
        let delta = match workload {
            EstimateWorkload::Clustered => cohort_delta(&table, delta_half, SEED + 77),
            EstimateWorkload::AgeBand => {
                workload_delta(&table, &mut rng, Workload::Clustered, delta_half, SEED + 77)
            }
            EstimateWorkload::Scattered => {
                workload_delta(&table, &mut rng, Workload::Scattered, delta_half, SEED + 77)
            }
        };
        let next = table.apply_delta(&delta).expect("valid delta");

        let (fresh, reestimate_ms) =
            best_ms(reps, || estimator.estimate_with(&next, Parallelism::Auto));
        let mut refresh_ms = f64::INFINITY;
        let mut refreshed = None;
        for _ in 0..reps {
            let mut model = sparse.clone();
            let (_, ms) = time_ms(|| estimator.refresh(&mut model, &table, &delta));
            refresh_ms = refresh_ms.min(ms);
            refreshed = Some(model);
        }
        let refreshed = refreshed.expect("reps >= 1");
        assert_models_identical(
            &fresh,
            &refreshed,
            &format!("refresh vs re-estimate ({})", workload.name()),
        );
        refresh.push(RefreshResult {
            workload,
            delta_rows: delta.len(),
            refresh_ms,
            reestimate_ms,
        });
    }

    EstimateResult {
        rows,
        distinct_points: dense.len(),
        support_density,
        dense_reference_ms,
        sparse_ms,
        sparse_parallel_ms,
        refresh,
    }
}

fn estimate_json(results: &[EstimateResult], threads: usize, smoke: bool, reps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"estimate\",\n");
    out.push_str(&format!("  \"adversary_bandwidth\": {B_PRIME},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"distinct_points\": {}, \"support_density\": {:.4}, \
             \"dense_reference_ms\": {:.3}, \"sparse_ms\": {:.3}, \"sparse_parallel_ms\": {:.3}, \
             \"sparse_speedup\": {:.3}, \"sparse_parallel_speedup\": {:.3}, \
             \"workloads\": [",
            r.rows,
            r.distinct_points,
            r.support_density,
            r.dense_reference_ms,
            r.sparse_ms,
            r.sparse_parallel_ms,
            r.sparse_speedup(),
            r.sparse_parallel_speedup(),
        ));
        for (j, w) in r.refresh.iter().enumerate() {
            out.push_str(&format!(
                "{{\"workload\": \"{}\", \"delta_rows\": {}, \"refresh_ms\": {:.3}, \
                 \"reestimate_ms\": {:.3}, \"refresh_speedup\": {:.3}}}{}",
                w.workload.name(),
                w.delta_rows,
                w.refresh_ms,
                w.reestimate_ms,
                w.reestimate_ms / w.refresh_ms,
                if j + 1 < r.refresh.len() { ", " } else { "" },
            ));
        }
        out.push_str(&format!(
            "], \"identical_output\": true}}{}\n",
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_estimate_mode(sizes: &[usize], reps: usize, out_path: &str, smoke: bool) {
    let threads = Parallelism::Auto.effective_threads();
    let mut report = Report::new(
        "P̂pri estimation: dense reference vs sparse engine vs session refresh",
        &[
            "distinct",
            "density",
            "dense",
            "sparse",
            "sparse-par",
            "speedup",
            "refresh(clu)",
            "refresh(band)",
            "refresh(sca)",
        ],
    );
    let mut results = Vec::new();
    for &rows in sizes {
        let r = run_estimate(rows, reps);
        let per_workload = |w: EstimateWorkload| {
            r.refresh
                .iter()
                .find(|x| x.workload == w)
                .map(|x| format!("{:.1}x", x.reestimate_ms / x.refresh_ms))
                .unwrap_or_default()
        };
        report.row(
            &format!("{rows} rows"),
            vec![
                format!("{}", r.distinct_points),
                format!("{:.1}%", 100.0 * r.support_density),
                format!("{:.1}ms", r.dense_reference_ms),
                format!("{:.1}ms", r.sparse_ms),
                format!("{:.1}ms", r.sparse_parallel_ms),
                format!("{:.1}x", r.sparse_parallel_speedup()),
                per_workload(EstimateWorkload::Clustered),
                per_workload(EstimateWorkload::AgeBand),
                per_workload(EstimateWorkload::Scattered),
            ],
        );
        results.push(r);
    }
    report.note(&format!(
        "{threads} worker thread(s); min over {reps} rep(s); bandwidth {B_PRIME}; density = mean \
         nonzero fraction of the per-attribute kernel tables; refresh columns = speedup of \
         PriorEstimator::refresh over full re-estimation under one 1% delta (clustered = \
         demographic cohort at few distinct QI profiles, band = BENCH_incremental's age-band \
         cohort, scattered = uniform churn); every engine pair verified bit-identical before \
         timing is recorded"
    ));
    println!("{}", report.render());

    let payload = estimate_json(&results, threads, smoke, reps);
    let mut file = std::fs::File::create(out_path).expect("create estimate json");
    file.write_all(payload.as_bytes())
        .expect("write estimate json");
    println!("wrote {out_path}");
}

/// Serial wall-clock of one physical layout through the identical engine
/// code — the layout A/B lane of the `--scale` benchmark.
struct LayoutLane {
    publish_ms: f64,
    estimate_ms: f64,
    audit_kernel_ms: f64,
    audit_tcloseness_ms: f64,
    group_by_ms: f64,
    fold_ms: f64,
}

impl LayoutLane {
    /// The end-to-end publish+audit path the acceptance criterion names:
    /// partition the table, estimate the auditing adversary's prior model,
    /// audit against both reference adversaries.
    fn pipeline_ms(&self) -> f64 {
        self.publish_ms + self.estimate_ms + self.audit_kernel_ms + self.audit_tcloseness_ms
    }
}

/// Everything one lane produced, kept long enough for the cross-layout
/// identity checks.
struct LaneOutput {
    lane: LayoutLane,
    groups: Vec<Vec<usize>>,
    kernel_risks: Vec<f64>,
    tcl_risks: Vec<f64>,
    group_map: std::collections::BTreeMap<Box<[u32]>, Vec<usize>>,
    folded: FoldedTable,
}

/// Run the full serial publish→estimate→audit pipeline (plus the isolated
/// group-by-QI and fold passes) on one table, whatever its layout.
fn run_scale_lane(table: &Table, reps: usize) -> LaneOutput {
    let publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Serial);
    let (outcome, publish_ms) = best_ms(reps, || publisher.publish(table).expect("satisfiable"));
    let groups = outcome.anonymized.row_groups();

    let (group_map, group_by_ms) = best_ms(reps, || table.group_by_qi());
    let (folded, fold_ms) = best_ms(reps, || FoldedTable::new(table));

    let measure: Arc<dyn bgkanon::stats::BeliefDistance> = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));
    let (kernel_auditor, estimate_ms) = best_ms(reps, || {
        let adversary = Arc::new(Adversary::kernel(
            table,
            Bandwidth::uniform(B_PRIME, table.qi_count()).expect("positive bandwidth"),
        ));
        Auditor::new(adversary, Arc::clone(&measure))
    });
    let (kernel_risks, audit_kernel_ms) = best_ms(reps, || {
        kernel_auditor.tuple_risks_with(table, &groups, Parallelism::Serial)
    });

    let tcl_auditor = Auditor::new(Arc::new(Adversary::t_closeness(table)), measure);
    let (tcl_risks, audit_tcloseness_ms) = best_ms(reps, || {
        tcl_auditor.tuple_risks_with(table, &groups, Parallelism::Serial)
    });

    LaneOutput {
        lane: LayoutLane {
            publish_ms,
            estimate_ms,
            audit_kernel_ms,
            audit_tcloseness_ms,
            group_by_ms,
            fold_ms,
        },
        groups,
        kernel_risks,
        tcl_risks,
        group_map,
        folded,
    }
}

/// One size point of the layout A/B scale benchmark.
struct ScaleResult {
    rows: usize,
    groups: usize,
    distinct_points: usize,
    vulnerable: usize,
    columnar: LayoutLane,
    rowmajor: LayoutLane,
}

impl ScaleResult {
    /// Row-major over columnar on the publish+audit pipeline — the number
    /// the acceptance criterion gates (≥1.5× at 1M rows).
    fn layout_speedup(&self) -> f64 {
        self.rowmajor.pipeline_ms() / self.columnar.pipeline_ms()
    }
}

fn run_scale(rows: usize, reps: usize) -> ScaleResult {
    let columnar = adult::generate(rows, SEED);
    assert_eq!(
        columnar.layout(),
        Layout::Columnar,
        "generator emits columnar"
    );
    let rowmajor = columnar.to_layout(Layout::RowMajor);

    let c = run_scale_lane(&columnar, reps);
    let r = run_scale_lane(&rowmajor, reps);

    // The recorded layout speedup must never be bought with drift: both
    // lanes ran the identical engine code, so every artifact — partition,
    // audits, group-by fold, estimator fold — must agree bit-for-bit.
    assert_eq!(
        c.groups.len(),
        r.groups.len(),
        "layouts disagree on group count"
    );
    for (a, b) in c.groups.iter().zip(&r.groups) {
        assert_eq!(a, b, "layouts disagree on a group's rows");
    }
    for (row, (a, b)) in c.kernel_risks.iter().zip(&r.kernel_risks).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "kernel audit diverges between layouts at row {row}"
        );
    }
    for (row, (a, b)) in c.tcl_risks.iter().zip(&r.tcl_risks).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "t-closeness audit diverges between layouts at row {row}"
        );
    }
    assert!(
        c.group_map == r.group_map,
        "group_by_qi diverges between layouts"
    );
    assert_eq!(c.folded.len(), r.folded.len(), "fold sizes diverge");
    assert_eq!(c.folded.rows(), r.folded.rows(), "fold row totals diverge");
    for (a, b) in c.folded.points().zip(r.folded.points()) {
        assert_eq!(a.qi(), b.qi(), "fold keys diverge between layouts");
        assert_eq!(a.count(), b.count(), "fold counts diverge between layouts");
        assert_eq!(
            a.sensitive_counts(),
            b.sensitive_counts(),
            "fold histograms diverge between layouts"
        );
    }

    let vulnerable = c
        .kernel_risks
        .iter()
        .filter(|x| !x.is_nan() && **x > THRESHOLD)
        .count();
    ScaleResult {
        rows,
        groups: c.groups.len(),
        distinct_points: c.folded.len(),
        vulnerable,
        columnar: c.lane,
        rowmajor: r.lane,
    }
}

fn scale_json(results: &[ScaleResult], smoke: bool, reps: usize) -> String {
    let lane = |l: &LayoutLane| {
        format!(
            "{{\"publish_ms\": {:.3}, \"estimate_ms\": {:.3}, \
             \"audit_kernel_ms\": {:.3}, \"audit_tcloseness_ms\": {:.3}, \
             \"group_by_ms\": {:.3}, \"fold_ms\": {:.3}, \"pipeline_ms\": {:.3}}}",
            l.publish_ms,
            l.estimate_ms,
            l.audit_kernel_ms,
            l.audit_tcloseness_ms,
            l.group_by_ms,
            l.fold_ms,
            l.pipeline_ms(),
        )
    };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"requirement\": \"{K}-anonymity\",\n"));
    out.push_str(&format!("  \"adversary_bandwidth\": {B_PRIME},\n"));
    out.push_str(&format!("  \"audit_threshold\": {THRESHOLD},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"groups\": {}, \"distinct_points\": {}, \
             \"vulnerable\": {},\n     \"columnar\": {},\n     \"rowmajor\": {},\n     \
             \"publish_speedup\": {:.3}, \"estimate_speedup\": {:.3}, \
             \"audit_speedup\": {:.3}, \"group_by_speedup\": {:.3}, \
             \"fold_speedup\": {:.3}, \"layout_speedup\": {:.3}, \
             \"identical_output\": true}}{}\n",
            r.rows,
            r.groups,
            r.distinct_points,
            r.vulnerable,
            lane(&r.columnar),
            lane(&r.rowmajor),
            r.rowmajor.publish_ms / r.columnar.publish_ms,
            r.rowmajor.estimate_ms / r.columnar.estimate_ms,
            (r.rowmajor.audit_kernel_ms + r.rowmajor.audit_tcloseness_ms)
                / (r.columnar.audit_kernel_ms + r.columnar.audit_tcloseness_ms),
            r.rowmajor.group_by_ms / r.columnar.group_by_ms,
            r.rowmajor.fold_ms / r.columnar.fold_ms,
            r.layout_speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_scale_mode(sizes: &[usize], reps: usize, out_path: &str, smoke: bool) {
    let mut report = Report::new(
        "Scale: columnar vs row-major layout through the serial engine",
        &[
            "groups",
            "col pub",
            "rm pub",
            "col est",
            "rm est",
            "col audit",
            "rm audit",
            "speedup",
        ],
    );
    let mut results = Vec::new();
    for &rows in sizes {
        let r = run_scale(rows, reps);
        report.row(
            &format!("{rows} rows"),
            vec![
                format!("{}", r.groups),
                format!("{:.1}ms", r.columnar.publish_ms),
                format!("{:.1}ms", r.rowmajor.publish_ms),
                format!("{:.1}ms", r.columnar.estimate_ms),
                format!("{:.1}ms", r.rowmajor.estimate_ms),
                format!(
                    "{:.1}ms",
                    r.columnar.audit_kernel_ms + r.columnar.audit_tcloseness_ms
                ),
                format!(
                    "{:.1}ms",
                    r.rowmajor.audit_kernel_ms + r.rowmajor.audit_tcloseness_ms
                ),
                format!("{:.2}x", r.layout_speedup()),
            ],
        );
        results.push(r);
    }
    report.note(&format!(
        "serial engine on both layouts (equal thread count); min over {reps} rep(s); the \
         row-major lane is Table::to_layout(RowMajor) of the same generated table, run through \
         identical engine code; speedup = row-major / columnar on the publish + estimate + \
         audit pipeline; partitions, risks, group-by and estimator folds verified bit-identical \
         between layouts before any number is recorded"
    ));
    println!("{}", report.render());

    let payload = scale_json(&results, smoke, reps);
    let mut file = std::fs::File::create(out_path).expect("create scale json");
    file.write_all(payload.as_bytes())
        .expect("write scale json");
    println!("wrote {out_path}");
}

fn run_incremental_mode(sizes: &[usize], reps: usize, out_path: &str, smoke: bool) {
    let threads = Parallelism::Auto.effective_threads();
    let mut report = Report::new(
        "Incremental republication: 1% delta apply vs full publish+audit",
        &[
            "groups",
            "open",
            "apply",
            "inc audit",
            "full pub",
            "full audit",
            "speedup",
        ],
    );
    let mut results = Vec::new();
    for &rows in sizes {
        for workload in [Workload::Clustered, Workload::Scattered] {
            let r = run_incremental(rows, reps, workload);
            report.row(
                &format!("{rows} rows, {}", workload.name()),
                vec![
                    format!("{}", r.groups),
                    format!("{:.1}ms", r.open_ms),
                    format!("{:.2}ms", r.mean(|s| s.apply_ms)),
                    format!("{:.2}ms", r.mean(|s| s.inc_audit_ms)),
                    format!("{:.1}ms", r.mean(|s| s.full_publish_ms)),
                    format!("{:.1}ms", r.mean(|s| s.full_audit_ms)),
                    format!("{:.2}x", r.speedup_mean()),
                ],
            );
            results.push(r);
        }
    }
    report.note(&format!(
        "{threads} worker thread(s); {reps} delta(s) per size/workload, each ½% deletes + ½% \
         inserts (clustered = one narrow age-band cohort, scattered = uniform churn); one kernel \
         prior model estimated once (estimate_ms) and shared by both sides; every step's groups \
         and risks verified bit-identical before timing is recorded"
    ));
    println!("{}", report.render());

    let payload = incremental_json(&results, threads, smoke, reps);
    let mut file = std::fs::File::create(out_path).expect("create incremental json");
    file.write_all(payload.as_bytes())
        .expect("write incremental json");
    println!("wrote {out_path}");
}

/// Outcome of verifying one tenant of the concurrent benchmark.
struct TenantVerdict {
    name: String,
    rows: usize,
    groups: usize,
    identical: bool,
}

/// The concurrent serving benchmark: N tenants × M reader/writer threads
/// through a [`SessionHub`](bgkanon::SessionHub), against the **serial one-session loop** — one
/// thread processing every tenant sequentially through the single-owner
/// session engine with the serial reference engines and a fresh (uncached)
/// audit per release, the pre-hub way of serving the same workload. Both
/// sides apply the identical per-tenant delta sequences and serve the same
/// number of audit requests; every tenant's final publication and final
/// audit report are verified bit-identical across the two before any
/// throughput number is recorded.
fn run_concurrent_mode(smoke: bool, out_path: &str) {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let (tenants, readers, writers, rows, deltas) = if smoke {
        (3usize, 2usize, 1usize, 3_000usize, 5usize)
    } else {
        (8, 4, 2, 10_000, 6)
    };
    // Audit requests served per phase: the serial loop audits once per
    // release; the hub's readers serve this many times more (a serving
    // layer exists to answer many queries per release).
    let quota_mult = 4usize;
    let audit_quota = tenants * (deltas + 1) * quota_mult;
    let threads = Parallelism::Auto.effective_threads();

    // Deterministic per-tenant delta sequences, replayed identically by
    // both phases (the delta for a step depends only on the tenant's
    // current table, which evolves identically on both sides).
    let delta_for = |table: &Table, tenant: usize, step: usize| -> Delta {
        let mut rng =
            SmallRng::seed_from_u64(SEED ^ ((tenant as u64) << 24) ^ ((step as u64) << 8));
        let workload = if (tenant + step).is_multiple_of(2) {
            Workload::Clustered
        } else {
            Workload::Scattered
        };
        workload_delta(
            table,
            &mut rng,
            workload,
            (rows / 200).max(1),
            SEED + (tenant * 1_000 + step) as u64,
        )
    };

    let tables: Vec<Table> = (0..tenants)
        .map(|i| adult::generate(rows, SEED + i as u64))
        .collect();
    // Frozen per-tenant kernel adversaries (the Fig. 1 accounting: one
    // estimated prior reused across releases), built outside both timed
    // phases and shared by both so the audits compare exactly.
    let auditors: Vec<Auditor> = tables
        .iter()
        .map(|t| {
            let adversary = Arc::new(Adversary::kernel(
                t,
                Bandwidth::uniform(B_PRIME, t.qi_count()).expect("positive bandwidth"),
            ));
            let measure: Arc<dyn bgkanon::stats::BeliefDistance> =
                Arc::new(SmoothedJs::paper_default(t.schema().sensitive_distance()));
            Auditor::new(adversary, measure)
        })
        .collect();

    // ---- Phase 1: the serial one-session loop. --------------------------
    let serial_publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Serial);
    let serial_started = Instant::now();
    let mut serial_tables: Vec<Table> = Vec::with_capacity(tenants);
    let mut serial_reports = Vec::with_capacity(tenants);
    let mut serial_audits = 0usize;
    for i in 0..tenants {
        let mut session = serial_publisher.open(&tables[i]).expect("satisfiable");
        let mut last = auditors[i].report(
            session.table(),
            &session.anonymized().row_groups(),
            THRESHOLD,
        );
        serial_audits += 1;
        for step in 0..deltas {
            let d = delta_for(session.table(), i, step);
            session.apply(&d).expect("valid scripted delta");
            last = auditors[i].report(
                session.table(),
                &session.anonymized().row_groups(),
                THRESHOLD,
            );
            serial_audits += 1;
        }
        serial_tables.push(session.table().clone());
        serial_reports.push(last);
    }
    let serial_elapsed = serial_started.elapsed().as_secs_f64();
    let serial_deltas = tenants * deltas;

    // ---- Phase 2: the hub, writers + readers concurrent. ----------------
    let hub: Arc<bgkanon::SessionHub> = Arc::new(bgkanon::SessionHub::new());
    let hub_publisher = Publisher::new().k_anonymity(K);
    let names: Vec<String> = (0..tenants).map(|i| format!("tenant-{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        hub.register(name, &tables[i], &hub_publisher)
            .expect("satisfiable");
    }
    let served = AtomicUsize::new(0);
    let writers_done = AtomicBool::new(false);
    let hub_started = Instant::now();
    let hub_window = std::thread::scope(|scope| {
        let writer_handles: Vec<_> = (0..writers)
            .map(|w| {
                let hub = Arc::clone(&hub);
                let names = &names;
                let delta_for = &delta_for;
                scope.spawn(move || {
                    // Tenants are partitioned over writers; each tenant's
                    // delta sequence stays ordered within its one writer.
                    for i in (w..tenants).step_by(writers.max(1)) {
                        for step in 0..deltas {
                            let snap = hub.snapshot(&names[i]).expect("registered");
                            let d = delta_for(snap.table(), i, step);
                            hub.apply(&names[i], &d).expect("valid scripted delta");
                        }
                    }
                })
            })
            .collect();
        for r in 0..readers {
            let hub = Arc::clone(&hub);
            let names = &names;
            let auditors = &auditors;
            let served = &served;
            let writers_done = &writers_done;
            scope.spawn(move || {
                let mut round = r;
                // Serve the shared audit quota; keep serving while writers
                // are still publishing so the window always has reader load.
                loop {
                    let ticket = served.fetch_add(1, Ordering::Relaxed);
                    if ticket >= audit_quota && writers_done.load(Ordering::Relaxed) {
                        served.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                    let i = round % tenants;
                    let report = hub
                        .audit_with(&names[i], &auditors[i], THRESHOLD)
                        .expect("tenant registered");
                    assert!(report.worst_case >= 0.0);
                    round += 1;
                }
            });
        }
        for h in writer_handles {
            h.join().expect("writer thread");
        }
        writers_done.store(true, Ordering::Relaxed);
        hub_started.elapsed().as_secs_f64()
    });
    let hub_elapsed = hub_started.elapsed().as_secs_f64();
    let hub_audits = served.load(Ordering::Relaxed);

    // ---- Verification: concurrency must never buy throughput with drift.
    let mut verdicts: Vec<TenantVerdict> = Vec::with_capacity(tenants);
    for (i, name) in names.iter().enumerate() {
        let snap = hub.snapshot(name).expect("registered");
        let mut identical = true;
        // (a) The hub's evolved table is the serial loop's evolved table.
        identical &= snap.table().len() == serial_tables[i].len();
        if identical {
            for r in 0..snap.table().len() {
                if snap.table().qi(r) != serial_tables[i].qi(r)
                    || snap.table().sensitive_value(r) != serial_tables[i].sensitive_value(r)
                {
                    identical = false;
                    break;
                }
            }
        }
        // (b) The published partition matches a from-scratch publish.
        let fresh = serial_publisher.publish(snap.table()).expect("satisfiable");
        identical &= snap.anonymized().group_count() == fresh.anonymized.group_count();
        if identical {
            for (a, b) in snap
                .anonymized()
                .groups()
                .iter()
                .zip(fresh.anonymized.groups())
            {
                if a.rows != b.rows || a.ranges != b.ranges {
                    identical = false;
                    break;
                }
            }
        }
        // (c) A final cached hub audit is bit-identical to the serial
        // loop's final fresh audit of the same release.
        let hub_report = hub
            .audit_with(name, &auditors[i], THRESHOLD)
            .expect("registered");
        identical &= hub_report.risks.len() == serial_reports[i].risks.len();
        if identical {
            for (a, b) in hub_report.risks.iter().zip(&serial_reports[i].risks) {
                if a.to_bits() != b.to_bits() {
                    identical = false;
                    break;
                }
            }
        }
        verdicts.push(TenantVerdict {
            name: name.clone(),
            rows: snap.len(),
            groups: snap.group_count(),
            identical,
        });
    }
    let all_identical = verdicts.iter().all(|v| v.identical);

    let serial_audits_per_s = serial_audits as f64 / serial_elapsed;
    let serial_deltas_per_s = serial_deltas as f64 / serial_elapsed;
    let hub_audits_per_s = hub_audits as f64 / hub_elapsed;
    let hub_deltas_per_s = serial_deltas as f64 / hub_window;
    let audit_speedup = hub_audits_per_s / serial_audits_per_s;
    let delta_speedup = hub_deltas_per_s / serial_deltas_per_s;

    let mut report = Report::new(
        "Concurrent serving: SessionHub vs the serial one-session loop",
        &["elapsed", "deltas/s", "audits/s"],
    );
    report.row(
        "serial loop",
        vec![
            format!("{:.0}ms", serial_elapsed * 1e3),
            format!("{serial_deltas_per_s:.1}"),
            format!("{serial_audits_per_s:.1}"),
        ],
    );
    report.row(
        "hub",
        vec![
            format!("{:.0}ms", hub_elapsed * 1e3),
            format!("{hub_deltas_per_s:.1}"),
            format!("{hub_audits_per_s:.1}"),
        ],
    );
    report.note(&format!(
        "{tenants} tenants × {rows} rows; {deltas} deltas/tenant; {readers} reader + \
         {writers} writer thread(s) on {threads} core(s); hub served {hub_audits} audit \
         requests ({quota_mult}× the serial loop's {serial_audits}); audit speedup \
         {audit_speedup:.2}x, delta speedup {delta_speedup:.2}x; every tenant verified \
         bit-identical: {all_identical}"
    ));
    println!("{}", report.render());

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"concurrent\",\n");
    out.push_str(&format!("  \"requirement\": \"{K}-anonymity\",\n"));
    out.push_str(&format!("  \"adversary_bandwidth\": {B_PRIME},\n"));
    out.push_str(&format!("  \"audit_threshold\": {THRESHOLD},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"tenants\": {tenants},\n"));
    out.push_str(&format!("  \"rows_per_tenant\": {rows},\n"));
    out.push_str(&format!("  \"deltas_per_tenant\": {deltas},\n"));
    out.push_str(&format!("  \"reader_threads\": {readers},\n"));
    out.push_str(&format!("  \"writer_threads\": {writers},\n"));
    out.push_str(&format!(
        "  \"serial\": {{\"elapsed_ms\": {:.3}, \"audits\": {serial_audits}, \
         \"deltas_per_s\": {serial_deltas_per_s:.3}, \"audits_per_s\": \
         {serial_audits_per_s:.3}}},\n",
        serial_elapsed * 1e3
    ));
    out.push_str(&format!(
        "  \"hub\": {{\"elapsed_ms\": {:.3}, \"audits\": {hub_audits}, \
         \"deltas_per_s\": {hub_deltas_per_s:.3}, \"audits_per_s\": \
         {hub_audits_per_s:.3}}},\n",
        hub_elapsed * 1e3
    ));
    out.push_str(&format!("  \"delta_speedup\": {delta_speedup:.3},\n"));
    out.push_str(&format!("  \"audit_speedup\": {audit_speedup:.3},\n"));
    out.push_str("  \"tenant_verdicts\": [\n");
    for (i, v) in verdicts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"rows\": {}, \"groups\": {}, \
             \"identical_output\": {}}}{}\n",
            v.name,
            v.rows,
            v.groups,
            v.identical,
            if i + 1 < verdicts.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"identical_output\": {all_identical}\n"));
    out.push_str("}\n");
    let mut file = std::fs::File::create(out_path).expect("create concurrent json");
    file.write_all(out.as_bytes())
        .expect("write concurrent json");
    println!("wrote {out_path}");
    assert!(
        all_identical,
        "concurrent serving drifted from the serial replay — see {out_path}"
    );
}

/// Cold-start recovery cost: durable hubs are written once per size point
/// (same scripted churn as the concurrent bench), dropped, and re-opened
/// cold under two durability configurations — WAL-only (every delta
/// replayed through the incremental engine) and checkpoint+WAL-tail (the
/// partition tree resumes from the latest checkpoint). Every re-opened
/// tenant must publish bit-identically to the hub that was dropped.
fn run_recovery_mode(smoke: bool, out_path: &str) {
    use bgkanon::{DurabilityOptions, SessionHub, SyncPolicy};

    let rows = if smoke { 1_000usize } else { 5_000usize };
    let size_points: &[(usize, usize)] = if smoke {
        &[(1, 4), (2, 8)]
    } else {
        &[(2, 8), (4, 16), (8, 32)]
    };
    let checkpoint_every = 4u64;
    let delta_half = (rows / 200).max(1);

    let delta_for = |table: &Table, tenant: usize, step: usize| -> Delta {
        let mut rng =
            SmallRng::seed_from_u64(SEED ^ ((tenant as u64) << 24) ^ ((step as u64) << 8));
        let workload = if (tenant + step).is_multiple_of(2) {
            Workload::Clustered
        } else {
            Workload::Scattered
        };
        workload_delta(
            table,
            &mut rng,
            workload,
            delta_half,
            SEED + (tenant * 1_000 + step) as u64,
        )
    };

    struct RecoveryPoint {
        tenants: usize,
        deltas: usize,
        wal_open_ms: f64,
        wal_replayed: usize,
        checkpoint_open_ms: f64,
        checkpoint_replayed: usize,
        identical: bool,
    }

    // Captured publication of one tenant: (version, per-group rows/ranges/
    // sensitive counts) — enough to assert bit-identity after a cold open.
    type Captured = (
        u64,
        Vec<(Vec<usize>, Vec<bgkanon::anon::QiRange>, Vec<u32>)>,
    );
    let capture = |hub: &SessionHub, name: &str| -> Captured {
        let snap = hub.snapshot(name).expect("registered");
        let groups = snap
            .anonymized()
            .groups()
            .iter()
            .map(|g| (g.rows.clone(), g.ranges.clone(), g.sensitive_counts.clone()))
            .collect();
        (snap.version(), groups)
    };

    let publisher = Publisher::new().k_anonymity(K);
    let mut points: Vec<RecoveryPoint> = Vec::with_capacity(size_points.len());
    for (point, &(tenants, deltas)) in size_points.iter().enumerate() {
        let mut open_ms = [0.0f64; 2];
        let mut replayed = [0usize; 2];
        let mut identical = true;
        for (cfg, every) in [0u64, checkpoint_every].into_iter().enumerate() {
            let dir = std::env::temp_dir().join(format!(
                "bgkanon_bench_recovery_{}_{point}_{cfg}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let options = DurabilityOptions {
                sync: SyncPolicy::Always,
                checkpoint_every: every,
                verify_on_open: false,
                max_resident_bytes: None,
            };
            // Write phase: register + scripted churn, then capture and drop.
            let expected: Vec<Captured> = {
                let (hub, _) = SessionHub::open_with(&dir, options).expect("create durable hub");
                let names: Vec<String> = (0..tenants).map(|i| format!("tenant-{i}")).collect();
                for (i, name) in names.iter().enumerate() {
                    let table = adult::generate(rows, SEED + i as u64);
                    hub.register(name, &table, &publisher).expect("satisfiable");
                }
                for (i, name) in names.iter().enumerate() {
                    for step in 0..deltas {
                        let snap = hub.snapshot(name).expect("registered");
                        let d = delta_for(snap.table(), i, step);
                        hub.apply(name, &d).expect("valid scripted delta");
                    }
                }
                names.iter().map(|n| capture(&hub, n)).collect()
            };
            // Cold open: the only timed region.
            let ((hub, report), ms) =
                time_ms(|| SessionHub::open_with(&dir, options).expect("recover"));
            assert!(report.is_clean(), "recovery bench hit unrecoverable state");
            open_ms[cfg] = ms;
            replayed[cfg] = report.tenants.iter().map(|t| t.replayed).sum();
            for (i, want) in expected.iter().enumerate() {
                let got = capture(&hub, &format!("tenant-{i}"));
                identical &= *want == got;
            }
            drop(hub);
            let _ = std::fs::remove_dir_all(&dir);
        }
        points.push(RecoveryPoint {
            tenants,
            deltas,
            wal_open_ms: open_ms[0],
            wal_replayed: replayed[0],
            checkpoint_open_ms: open_ms[1],
            checkpoint_replayed: replayed[1],
            identical,
        });
    }
    let all_identical = points.iter().all(|p| p.identical);

    let mut report = Report::new(
        "Recovery: cold-start SessionHub::open, WAL replay vs checkpoint resume",
        &[
            "deltas/tenant",
            "WAL-only open",
            "ckpt+tail open",
            "replayed",
        ],
    );
    for p in &points {
        report.row(
            &format!("{} tenant(s)", p.tenants),
            vec![
                format!("{}", p.deltas),
                format!("{:.1}ms", p.wal_open_ms),
                format!("{:.1}ms", p.checkpoint_open_ms),
                format!("{} vs {}", p.wal_replayed, p.checkpoint_replayed),
            ],
        );
    }
    report.note(&format!(
        "{rows} rows/tenant, fsync always, checkpoint every {checkpoint_every} deltas; \
         every re-opened tenant verified bit-identical to the dropped hub: {all_identical}"
    ));
    println!("{}", report.render());

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"recovery\",\n");
    out.push_str(&format!("  \"requirement\": \"{K}-anonymity\",\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"rows_per_tenant\": {rows},\n"));
    out.push_str("  \"sync\": \"always\",\n");
    out.push_str(&format!("  \"checkpoint_every\": {checkpoint_every},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tenants\": {}, \"deltas_per_tenant\": {}, \"wal_open_ms\": {:.3}, \
             \"wal_replayed\": {}, \"checkpoint_open_ms\": {:.3}, \
             \"checkpoint_replayed\": {}, \"identical_output\": {}}}{}\n",
            p.tenants,
            p.deltas,
            p.wal_open_ms,
            p.wal_replayed,
            p.checkpoint_open_ms,
            p.checkpoint_replayed,
            p.identical,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"identical_output\": {all_identical}\n"));
    out.push_str("}\n");
    let mut file = std::fs::File::create(out_path).expect("create recovery json");
    file.write_all(out.as_bytes()).expect("write recovery json");
    println!("wrote {out_path}");
    assert!(
        all_identical,
        "recovered state drifted from the dropped hub — see {out_path}"
    );
}

fn run_fleet_mode(smoke: bool, out_path: &str) {
    use bgkanon::privacy::AuditReport;
    use bgkanon::{DurabilityOptions, SessionHub, SyncPolicy, TenantSnapshot};

    let tenants: usize = if smoke { 400 } else { 10_000 };
    let rows = 64usize;
    let distinct = 32usize;
    let ops = tenants * 4;
    let zipf_s = 1.3f64;
    let fleet_k = 4usize;
    let b_primes = [0.3f64, 0.5];
    let apply_fraction = 0.15f64;
    let checkpoint_every = 8u64;

    // Deterministic Zipfian CDF over tenant ranks (rank 0 hottest).
    let weights: Vec<f64> = (0..tenants)
        .map(|r| 1.0 / ((r + 1) as f64).powf(zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0f64, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();

    // The access script is drawn once and replayed verbatim by every
    // lane, so budgeted and unbounded hubs see the same operations.
    enum Op {
        Apply(usize),
        Audit(usize, f64),
    }
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x00f1_ee70);
    let script: Vec<Op> = (0..ops)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..1.0);
            let tenant = cdf.partition_point(|c| *c < x).min(tenants - 1);
            if rng.gen_bool(apply_fraction) {
                Op::Apply(tenant)
            } else {
                let b = b_primes[(rng.gen::<u64>() % b_primes.len() as u64) as usize];
                Op::Audit(tenant, b)
            }
        })
        .collect();

    fn fold(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
    }
    fn digest_snapshot(snap: &TenantSnapshot) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, snap.version());
        for g in snap.anonymized().groups() {
            for &r in &g.rows {
                h = fold(h, r as u64);
            }
            for q in &g.ranges {
                h = fold(h, (u64::from(q.min) << 32) | u64::from(q.max));
            }
            for &c in &g.sensitive_counts {
                h = fold(h, u64::from(c));
            }
        }
        h
    }
    fn digest_report(report: &AuditReport) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, report.worst_case.to_bits());
        h = fold(h, report.mean.to_bits());
        h = fold(h, report.vulnerable as u64);
        for r in &report.risks {
            h = fold(h, r.to_bits());
        }
        h
    }

    struct Lane {
        budget_bytes: Option<usize>,
        peak_resident_bytes: usize,
        elapsed_ms: f64,
        audits: usize,
        hit_rate: f64,
        hit_rate_total: f64,
        evictions: u64,
        rehydrations: u64,
        interned_models: usize,
        intern_hits: u64,
        intern_misses: u64,
        digests: Vec<u64>,
        final_digest: u64,
    }

    let publisher = Publisher::new().k_anonymity(fleet_k);
    let name_of = |i: usize| format!("tenant-{i:05}");
    let run_lane = |tag: &str, budget: Option<usize>| -> Lane {
        let dir =
            std::env::temp_dir().join(format!("bgkanon_bench_fleet_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = DurabilityOptions {
            sync: SyncPolicy::Never,
            checkpoint_every,
            verify_on_open: false,
            max_resident_bytes: budget,
        };
        let (hub, _) = SessionHub::<bgkanon::anon::AnyStrategy>::open_with(&dir, options)
            .expect("create fleet hub");
        for i in 0..tenants {
            let table = adult::generate(rows, SEED + (i % distinct) as u64);
            hub.register(&name_of(i), &table, &publisher)
                .expect("small tenant is satisfiable");
        }
        let mut digests = Vec::with_capacity(ops);
        let mut peak = hub.memory_stats().resident_bytes;
        let mut audits = 0usize;
        let mut rehydrations_mid = 0u64;
        let (_, elapsed_ms) = time_ms(|| {
            for (idx, op) in script.iter().enumerate() {
                match *op {
                    Op::Apply(t) => {
                        let name = name_of(t);
                        let delta = {
                            let snap = hub.snapshot(&name).expect("registered");
                            // Seeded per op index: every lane derives the
                            // identical delta from the identical table.
                            let mut delta_rng = SmallRng::seed_from_u64(SEED ^ (idx as u64) << 8);
                            workload_delta(
                                snap.table(),
                                &mut delta_rng,
                                Workload::Scattered,
                                2,
                                SEED + idx as u64,
                            )
                        };
                        let snap = hub.apply(&name, &delta).expect("scripted delta");
                        digests.push(digest_snapshot(&snap));
                    }
                    Op::Audit(t, b) => {
                        let report = hub
                            .audit_against(&name_of(t), b, THRESHOLD)
                            .expect("registered");
                        digests.push(digest_report(&report));
                        audits += 1;
                    }
                }
                if idx % 64 == 0 {
                    let s = hub.memory_stats();
                    peak = peak.max(s.resident_bytes);
                    if std::env::var_os("FLEET_DEBUG").is_some() {
                        eprintln!(
                            "op {idx}: resident {} evicted {} bytes {} rehy {}",
                            s.resident_tenants, s.evicted_tenants, s.resident_bytes, s.rehydrations
                        );
                    }
                }
                if idx + 1 == ops / 2 {
                    rehydrations_mid = hub.memory_stats().rehydrations;
                }
            }
        });
        // Stats close with the script: the verification sweep below
        // rehydrates every evicted tenant and must not pollute them.
        let stats = hub.memory_stats();
        peak = peak.max(stats.resident_bytes);
        let mut final_digest = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..tenants {
            let snap = hub.snapshot(&name_of(i)).expect("registered");
            final_digest = fold(final_digest, digest_snapshot(&snap));
        }
        let warm_ops = (ops - ops / 2) as f64;
        let warm_misses = (stats.rehydrations - rehydrations_mid) as f64;
        drop(hub);
        let _ = std::fs::remove_dir_all(&dir);
        Lane {
            budget_bytes: budget,
            peak_resident_bytes: peak,
            elapsed_ms,
            audits,
            hit_rate: 1.0 - warm_misses / warm_ops,
            hit_rate_total: 1.0 - stats.rehydrations as f64 / ops as f64,
            evictions: stats.evictions,
            rehydrations: stats.rehydrations,
            interned_models: stats.interned_models,
            intern_hits: stats.intern_hits,
            intern_misses: stats.intern_misses,
            digests,
            final_digest,
        }
    };

    let unbounded = run_lane("unbounded", None);
    let fractions = [2usize, 4, 8];
    let lanes: Vec<(usize, Lane)> = fractions
        .iter()
        .map(|&f| {
            let budget = unbounded.peak_resident_bytes / f;
            (f, run_lane(&format!("budget_{f}"), Some(budget)))
        })
        .collect();
    let identical_of = |lane: &Lane| -> bool {
        lane.digests == unbounded.digests && lane.final_digest == unbounded.final_digest
    };
    let all_identical = lanes.iter().all(|(_, l)| identical_of(l));

    let mb = |bytes: usize| bytes as f64 / (1024.0 * 1024.0);
    let mut report = Report::new(
        "Fleet: Zipfian multi-tenant serving under resident-memory budgets",
        &[
            "budget",
            "peak resident",
            "hit rate",
            "evict/rehydrate",
            "audits/s",
        ],
    );
    report.row(
        "unbounded",
        vec![
            "-".to_owned(),
            format!("{:.1}MB", mb(unbounded.peak_resident_bytes)),
            "1.000".to_owned(),
            "0 / 0".to_owned(),
            format!(
                "{:.0}",
                unbounded.audits as f64 / (unbounded.elapsed_ms / 1e3)
            ),
        ],
    );
    for (f, lane) in &lanes {
        report.row(
            &format!("peak/{f}"),
            vec![
                format!("{:.1}MB", mb(lane.budget_bytes.unwrap_or(0))),
                format!("{:.1}MB", mb(lane.peak_resident_bytes)),
                format!("{:.3}", lane.hit_rate),
                format!("{} / {}", lane.evictions, lane.rehydrations),
                format!("{:.0}", lane.audits as f64 / (lane.elapsed_ms / 1e3)),
            ],
        );
    }
    report.note(&format!(
        "{tenants} tenants × {rows} rows ({distinct} distinct contents), {ops} Zipf(s={zipf_s}) \
         ops ({:.0}% deltas), {fleet_k}-anonymity, sync=never, checkpoint every {checkpoint_every}; \
         {} prior models interned ({} hits / {} misses); hit rate = warm-window fraction of \
         operations served without rehydration; every budget lane's outputs bit-identical to the \
         unbounded lane: {all_identical}",
        apply_fraction * 100.0,
        unbounded.interned_models,
        unbounded.intern_hits,
        unbounded.intern_misses,
    ));
    println!("{}", report.render());

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fleet\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"tenants\": {tenants},\n"));
    out.push_str(&format!("  \"rows_per_tenant\": {rows},\n"));
    out.push_str(&format!("  \"distinct_contents\": {distinct},\n"));
    out.push_str(&format!("  \"ops\": {ops},\n"));
    out.push_str(&format!("  \"zipf_s\": {zipf_s},\n"));
    out.push_str(&format!("  \"apply_fraction\": {apply_fraction},\n"));
    out.push_str(&format!("  \"requirement\": \"{fleet_k}-anonymity\",\n"));
    out.push_str(&format!(
        "  \"unbounded\": {{\"peak_resident_bytes\": {}, \"elapsed_ms\": {:.3}, \
         \"audits_per_s\": {:.1}, \"evictions\": {}, \"interned_models\": {}, \
         \"intern_hits\": {}, \"intern_misses\": {}}},\n",
        unbounded.peak_resident_bytes,
        unbounded.elapsed_ms,
        unbounded.audits as f64 / (unbounded.elapsed_ms / 1e3),
        unbounded.evictions,
        unbounded.interned_models,
        unbounded.intern_hits,
        unbounded.intern_misses,
    ));
    out.push_str("  \"lanes\": [\n");
    for (i, (f, lane)) in lanes.iter().enumerate() {
        let budget = lane.budget_bytes.unwrap_or(0);
        out.push_str(&format!(
            "    {{\"budget_fraction\": {f}, \"budget_bytes\": {budget}, \
             \"peak_resident_bytes\": {}, \"peak_over_budget\": {:.4}, \
             \"hit_rate\": {:.4}, \"hit_rate_total\": {:.4}, \"evictions\": {}, \
             \"rehydrations\": {}, \"elapsed_ms\": {:.3}, \"audits_per_s\": {:.1}, \
             \"identical_output\": {}}}{}\n",
            lane.peak_resident_bytes,
            lane.peak_resident_bytes as f64 / budget as f64,
            lane.hit_rate,
            lane.hit_rate_total,
            lane.evictions,
            lane.rehydrations,
            lane.elapsed_ms,
            lane.audits as f64 / (lane.elapsed_ms / 1e3),
            identical_of(lane),
            if i + 1 < lanes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"identical_output\": {all_identical}\n"));
    out.push_str("}\n");
    let mut file = std::fs::File::create(out_path).expect("create fleet json");
    file.write_all(out.as_bytes()).expect("write fleet json");
    println!("wrote {out_path}");
    assert!(
        all_identical,
        "a budgeted lane's outputs drifted from the unbounded lane — see {out_path}"
    );
}

/// One measured delta step of the strategies benchmark.
struct StrategyStep {
    refresh_ms: f64,
    scratch_ms: f64,
}

/// Strategies results for one (size, algorithm, workload) cell.
struct StrategyResult {
    rows: usize,
    algorithm: Algorithm,
    workload: Workload,
    delta_rows: usize,
    groups: usize,
    open_ms: f64,
    steps: Vec<StrategyStep>,
}

impl StrategyResult {
    fn mean(&self, f: impl Fn(&StrategyStep) -> f64) -> f64 {
        self.steps.iter().map(f).sum::<f64>() / self.steps.len() as f64
    }

    /// Speedup of the mean incremental refresh over the mean from-scratch
    /// publish of the same post-delta table.
    fn speedup_mean(&self) -> f64 {
        self.mean(|s| s.scratch_ms) / self.mean(|s| s.refresh_ms)
    }

    fn speedup_best(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.scratch_ms / s.refresh_ms)
            .fold(0.0, f64::max)
    }
}

/// Run the strategy-refresh benchmark for one cell: `reps` successive 1%
/// deltas through one session of `algorithm`, each step timed against a
/// from-scratch publish of the same post-delta table and checked
/// bit-identical before any number is recorded.
fn run_strategies(
    rows: usize,
    reps: usize,
    algorithm: Algorithm,
    workload: Workload,
) -> StrategyResult {
    let table = adult::generate(rows, SEED);
    let publisher = Publisher::new()
        .k_anonymity(4)
        .distinct_l_diversity(3)
        .algorithm(algorithm)
        .parallelism(Parallelism::Serial);
    let (mut session, open_ms) = time_ms(|| publisher.open(&table).expect("satisfiable"));
    let delta_half = (rows / 200).max(1);
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x5747_4759);
    let mut steps = Vec::with_capacity(reps);
    let mut churned = 0usize;
    for rep in 0..reps {
        let delta = workload_delta(
            session.table(),
            &mut rng,
            workload,
            delta_half,
            SEED + 2000 + rep as u64,
        );
        churned += delta.len();
        let (outcome, refresh_ms) = time_ms(|| session.apply(&delta).expect("satisfiable delta"));
        let (scratch, scratch_ms) =
            time_ms(|| publisher.publish(session.table()).expect("satisfiable"));
        // The recorded speedup must never be bought with drift.
        let inc = outcome.anonymized.groups();
        let full = scratch.anonymized.groups();
        assert_eq!(inc.len(), full.len(), "group count drift");
        for (a, b) in inc.iter().zip(full) {
            assert_eq!(a.rows, b.rows, "group membership drift");
            assert_eq!(a.ranges, b.ranges, "range drift");
            assert_eq!(a.sensitive_counts, b.sensitive_counts, "histogram drift");
        }
        steps.push(StrategyStep {
            refresh_ms,
            scratch_ms,
        });
    }
    StrategyResult {
        rows,
        algorithm,
        workload,
        delta_rows: churned / reps,
        groups: session.group_count(),
        open_ms,
        steps,
    }
}

fn strategies_json(results: &[StrategyResult], smoke: bool, reps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"strategies\",\n");
    out.push_str("  \"requirement\": \"4-anonymity ∧ distinct 3-diversity\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"algorithm\": \"{}\", \"workload\": \"{}\", \
             \"delta_rows\": {}, \"groups\": {}, \"open_ms\": {:.3}, \
             \"refresh_ms_mean\": {:.3}, \"scratch_publish_ms_mean\": {:.3}, \
             \"speedup_mean\": {:.3}, \"speedup_best\": {:.3}, \
             \"identical_output\": true}}{}\n",
            r.rows,
            r.algorithm.name(),
            r.workload.name(),
            r.delta_rows,
            r.groups,
            r.open_ms,
            r.mean(|s| s.refresh_ms),
            r.mean(|s| s.scratch_ms),
            r.speedup_mean(),
            r.speedup_best(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The strategies benchmark: every [`Algorithm`] behind the session API —
/// Mondrian, bucketization, full-domain generalization — refreshing through
/// 1% deltas vs a from-scratch publish of the same table, serial engines on
/// both sides so the comparison isolates the retained-state advantage.
fn run_strategies_mode(sizes: &[usize], reps: usize, out_path: &str, smoke: bool) {
    let mut report = Report::new(
        "Strategy refresh: 1% delta apply vs from-scratch publish, per algorithm",
        &["groups", "open", "refresh", "scratch", "speedup"],
    );
    let mut results = Vec::new();
    for &rows in sizes {
        for algorithm in [
            Algorithm::Mondrian,
            Algorithm::Bucketize,
            Algorithm::FullDomain,
        ] {
            for workload in [Workload::Clustered, Workload::Scattered] {
                let r = run_strategies(rows, reps, algorithm, workload);
                report.row(
                    &format!("{rows} rows, {}, {}", algorithm.name(), workload.name()),
                    vec![
                        format!("{}", r.groups),
                        format!("{:.1}ms", r.open_ms),
                        format!("{:.2}ms", r.mean(|s| s.refresh_ms)),
                        format!("{:.2}ms", r.mean(|s| s.scratch_ms)),
                        format!("{:.2}x", r.speedup_mean()),
                    ],
                );
                results.push(r);
            }
        }
    }
    report.note(&format!(
        "{reps} delta(s) per cell, each ½% deletes + ½% inserts (clustered = one narrow \
         age-band cohort, scattered = uniform churn); serial engines on both sides; every \
         step's groups, ranges and histograms verified bit-identical before timing is recorded"
    ));
    println!("{}", report.render());

    let payload = strategies_json(&results, smoke, reps);
    let mut file = std::fs::File::create(out_path).expect("create strategies json");
    file.write_all(payload.as_bytes())
        .expect("write strategies json");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let incremental = args.iter().any(|a| a == "--incremental");
    let estimate = args.iter().any(|a| a == "--estimate");
    let concurrent = args.iter().any(|a| a == "--concurrent");
    let recovery = args.iter().any(|a| a == "--recovery");
    let scale = args.iter().any(|a| a == "--scale");
    let fleet = args.iter().any(|a| a == "--fleet");
    let strategies = args.iter().any(|a| a == "--strategies");
    assert!(
        [
            incremental,
            estimate,
            concurrent,
            recovery,
            scale,
            fleet,
            strategies
        ]
        .iter()
        .filter(|b| **b)
        .count()
            <= 1,
        "--incremental, --estimate, --concurrent, --recovery, --scale, --fleet and \
         --strategies are mutually exclusive"
    );
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_after("--out").unwrap_or_else(|| {
        if incremental {
            "BENCH_incremental.json".to_owned()
        } else if estimate {
            "BENCH_estimate.json".to_owned()
        } else if concurrent {
            "BENCH_concurrent.json".to_owned()
        } else if recovery {
            "BENCH_recovery.json".to_owned()
        } else if scale {
            "BENCH_scale.json".to_owned()
        } else if fleet {
            "BENCH_fleet.json".to_owned()
        } else if strategies {
            "BENCH_strategies.json".to_owned()
        } else {
            "BENCH_baseline.json".to_owned()
        }
    });
    if concurrent {
        run_concurrent_mode(smoke, &out_path);
        return;
    }
    if recovery {
        run_recovery_mode(smoke, &out_path);
        return;
    }
    if fleet {
        run_fleet_mode(smoke, &out_path);
        return;
    }
    let reps: usize = arg_after("--reps")
        .map(|v| v.parse().expect("--reps takes a positive integer"))
        .unwrap_or(if scale {
            2
        } else {
            match (incremental || strategies, smoke) {
                (true, true) => 2,
                (true, false) => 8,
                (false, true) => 1,
                (false, false) => 3,
            }
        });
    assert!(reps >= 1, "--reps takes a positive integer");
    let sizes: Vec<usize> = if scale {
        if smoke {
            vec![2_000]
        } else {
            vec![1_000_000, 10_000_000]
        }
    } else if smoke {
        vec![1_000]
    } else {
        vec![10_000, 100_000]
    };
    if scale {
        run_scale_mode(&sizes, reps, &out_path, smoke);
        return;
    }
    if incremental {
        run_incremental_mode(&sizes, reps, &out_path, smoke);
        return;
    }
    if strategies {
        run_strategies_mode(&sizes, reps, &out_path, smoke);
        return;
    }
    if estimate {
        run_estimate_mode(&sizes, reps, &out_path, smoke);
        return;
    }
    let threads = Parallelism::Auto.effective_threads();

    let mut report = Report::new(
        "Baseline: publish + audit, serial vs parallel",
        &[
            "groups",
            "ser pub",
            "par pub",
            "ser Adv(b')",
            "par Adv(b')",
            "ser tcl",
            "par tcl",
            "speedup",
        ],
    );
    let mut results = Vec::new();
    for &rows in &sizes {
        let r = run_size(rows, reps);
        report.row(
            &format!("{rows} rows"),
            vec![
                format!("{}", r.groups),
                format!("{:.1}ms", r.serial_publish_ms),
                format!("{:.1}ms", r.parallel_publish_ms),
                format!("{:.1}ms", r.serial_audit_kernel_ms),
                format!("{:.1}ms", r.parallel_audit_kernel_ms),
                format!("{:.1}ms", r.serial_audit_tcloseness_ms),
                format!("{:.1}ms", r.parallel_audit_tcloseness_ms),
                format!("{:.2}x", r.speedup()),
            ],
        );
        results.push(r);
    }
    report.note(&format!(
        "{threads} worker thread(s); min over {reps} rep(s); kernel prior estimated once \
         (estimate_ms) and shared by both engines; outputs verified bit-identical"
    ));
    println!("{}", report.render());

    let payload = json(&results, threads, smoke, reps);
    let mut file = std::fs::File::create(&out_path).expect("create baseline json");
    file.write_all(payload.as_bytes())
        .expect("write baseline json");
    println!("wrote {out_path}");
}
