//! The recorded performance baseline: publish + audit wall-clock on the
//! synthetic Adult table, serial reference engine vs. the parallel batched
//! engine, written to `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p bgkanon-bench --bin baseline            # 10k + 100k rows
//! cargo run --release -p bgkanon-bench --bin baseline -- --smoke # 1k rows (CI)
//! ```
//!
//! Methodology:
//!
//! * **publish** — Mondrian under 10-anonymity (the partitioning cost the
//!   paper's Fig. 4(a) measures); the serial column runs the reference
//!   engine, the parallel column the work-stealing engine;
//! * **audit** — the full §V.A disclosure-risk audit of the published
//!   partition against the paper's two reference adversaries: the kernel
//!   `Adv(0.25·1)` (its prior model estimated once, outside the timed
//!   regions, and shared by both engines — the paper's Fig. 4 accounting
//!   excludes estimation, and it is identical work either way; the cost is
//!   still recorded in `estimate_ms`) and the constant-prior t-closeness
//!   adversary of §II.D, whose audit the batched engine collapses from one
//!   posterior per *row* to one per *group signature*;
//! * every timed section is the **minimum over `--reps N`** (default 3)
//!   runs, and both engines must produce bit-identical groups and risks —
//!   the run aborts otherwise, so the recorded speedup is never bought with
//!   drift.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bgkanon::data::{adult, Parallelism, Table};
use bgkanon::knowledge::{Adversary, Bandwidth};
use bgkanon::privacy::Auditor;
use bgkanon::stats::SmoothedJs;
use bgkanon::Publisher;
use bgkanon_bench::report::Report;

/// k of the published k-anonymity requirement.
const K: usize = 10;
/// Uniform bandwidth of the kernel auditing adversary.
const B_PRIME: f64 = 0.25;
/// Vulnerability threshold of the audit.
const THRESHOLD: f64 = 0.2;
/// Generator seed — the baseline must be reproducible.
const SEED: u64 = 42;

struct SizeResult {
    rows: usize,
    groups: usize,
    serial_publish_ms: f64,
    parallel_publish_ms: f64,
    estimate_ms: f64,
    serial_audit_kernel_ms: f64,
    parallel_audit_kernel_ms: f64,
    serial_audit_tcloseness_ms: f64,
    parallel_audit_tcloseness_ms: f64,
    vulnerable: usize,
}

impl SizeResult {
    fn serial_total_ms(&self) -> f64 {
        self.serial_publish_ms + self.serial_audit_kernel_ms + self.serial_audit_tcloseness_ms
    }

    fn parallel_total_ms(&self) -> f64 {
        self.parallel_publish_ms + self.parallel_audit_kernel_ms + self.parallel_audit_tcloseness_ms
    }

    fn speedup(&self) -> f64 {
        self.serial_total_ms() / self.parallel_total_ms()
    }
}

/// Wall-clock of `f`, in milliseconds.
fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Minimum wall-clock over `reps` runs, with the last run's value.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut value, mut best) = time_ms(&mut f);
    for _ in 1..reps {
        let (v, ms) = time_ms(&mut f);
        value = v;
        best = best.min(ms);
    }
    (value, best)
}

/// Audit with one adversary on both engines, asserting bit-identical risks.
/// Returns (serial_ms, parallel_ms, serial risks).
fn audit_both_engines(
    auditor: &Auditor,
    table: &Table,
    groups: &[Vec<usize>],
    reps: usize,
) -> (f64, f64, Vec<f64>) {
    let (serial_risks, serial_ms) = best_ms(reps, || {
        auditor.tuple_risks_with(table, groups, Parallelism::Serial)
    });
    let (parallel_risks, parallel_ms) = best_ms(reps, || {
        auditor.tuple_risks_with(table, groups, Parallelism::Auto)
    });
    for (row, (s, p)) in serial_risks.iter().zip(&parallel_risks).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "audit engines diverge at row {row}"
        );
    }
    (serial_ms, parallel_ms, serial_risks)
}

fn run_size(rows: usize, reps: usize) -> SizeResult {
    let table = adult::generate(rows, SEED);

    let serial_publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Serial);
    let parallel_publisher = Publisher::new()
        .k_anonymity(K)
        .parallelism(Parallelism::Auto);

    let (serial_outcome, serial_publish_ms) = best_ms(reps, || {
        serial_publisher.publish(&table).expect("satisfiable")
    });
    let (parallel_outcome, parallel_publish_ms) = best_ms(reps, || {
        parallel_publisher.publish(&table).expect("satisfiable")
    });

    // The recorded speedup must never be bought with drift.
    let sg = serial_outcome.anonymized.groups();
    let pg = parallel_outcome.anonymized.groups();
    assert_eq!(sg.len(), pg.len(), "engines disagree on group count");
    for (a, b) in sg.iter().zip(pg) {
        assert_eq!(a.rows, b.rows, "engines disagree on a group's rows");
    }
    let groups = serial_outcome.anonymized.row_groups();

    let measure: Arc<dyn bgkanon::stats::BeliefDistance> = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));

    // Kernel adversary: one shared prior model, estimated outside the timed
    // regions.
    let (kernel_auditor, estimate_ms) = time_ms(|| {
        let adversary = Arc::new(Adversary::kernel(
            &table,
            Bandwidth::uniform(B_PRIME, table.qi_count()).expect("positive bandwidth"),
        ));
        Auditor::new(adversary, Arc::clone(&measure))
    });
    let (serial_audit_kernel_ms, parallel_audit_kernel_ms, kernel_risks) =
        audit_both_engines(&kernel_auditor, &table, &groups, reps);
    let vulnerable = kernel_risks
        .iter()
        .filter(|r| !r.is_nan() && **r > THRESHOLD)
        .count();

    // Constant-prior t-closeness adversary (§II.D).
    let tcl_auditor = Auditor::new(Arc::new(Adversary::t_closeness(&table)), measure);
    let (serial_audit_tcloseness_ms, parallel_audit_tcloseness_ms, _) =
        audit_both_engines(&tcl_auditor, &table, &groups, reps);

    SizeResult {
        rows,
        groups: sg.len(),
        serial_publish_ms,
        parallel_publish_ms,
        estimate_ms,
        serial_audit_kernel_ms,
        parallel_audit_kernel_ms,
        serial_audit_tcloseness_ms,
        parallel_audit_tcloseness_ms,
        vulnerable,
    }
}

fn json(results: &[SizeResult], threads: usize, smoke: bool, reps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"baseline\",\n");
    out.push_str(&format!("  \"requirement\": \"{K}-anonymity\",\n"));
    out.push_str(&format!("  \"adversary_bandwidth\": {B_PRIME},\n"));
    out.push_str(&format!("  \"audit_threshold\": {THRESHOLD},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"groups\": {}, \"vulnerable\": {}, \
             \"serial_publish_ms\": {:.3}, \"parallel_publish_ms\": {:.3}, \
             \"estimate_ms\": {:.3}, \
             \"serial_audit_kernel_ms\": {:.3}, \"parallel_audit_kernel_ms\": {:.3}, \
             \"serial_audit_tcloseness_ms\": {:.3}, \"parallel_audit_tcloseness_ms\": {:.3}, \
             \"serial_total_ms\": {:.3}, \"parallel_total_ms\": {:.3}, \
             \"speedup\": {:.3}, \"identical_output\": true}}{}\n",
            r.rows,
            r.groups,
            r.vulnerable,
            r.serial_publish_ms,
            r.parallel_publish_ms,
            r.estimate_ms,
            r.serial_audit_kernel_ms,
            r.parallel_audit_kernel_ms,
            r.serial_audit_tcloseness_ms,
            r.parallel_audit_tcloseness_ms,
            r.serial_total_ms(),
            r.parallel_total_ms(),
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_baseline.json".to_owned());
    let reps: usize = arg_after("--reps")
        .map(|v| v.parse().expect("--reps takes a positive integer"))
        .unwrap_or(if smoke { 1 } else { 3 });
    assert!(reps >= 1, "--reps takes a positive integer");
    let sizes: Vec<usize> = if smoke {
        vec![1_000]
    } else {
        vec![10_000, 100_000]
    };
    let threads = Parallelism::Auto.effective_threads();

    let mut report = Report::new(
        "Baseline: publish + audit, serial vs parallel",
        &[
            "groups",
            "ser pub",
            "par pub",
            "ser Adv(b')",
            "par Adv(b')",
            "ser tcl",
            "par tcl",
            "speedup",
        ],
    );
    let mut results = Vec::new();
    for &rows in &sizes {
        let r = run_size(rows, reps);
        report.row(
            &format!("{rows} rows"),
            vec![
                format!("{}", r.groups),
                format!("{:.1}ms", r.serial_publish_ms),
                format!("{:.1}ms", r.parallel_publish_ms),
                format!("{:.1}ms", r.serial_audit_kernel_ms),
                format!("{:.1}ms", r.parallel_audit_kernel_ms),
                format!("{:.1}ms", r.serial_audit_tcloseness_ms),
                format!("{:.1}ms", r.parallel_audit_tcloseness_ms),
                format!("{:.2}x", r.speedup()),
            ],
        );
        results.push(r);
    }
    report.note(&format!(
        "{threads} worker thread(s); min over {reps} rep(s); kernel prior estimated once \
         (estimate_ms) and shared by both engines; outputs verified bit-identical"
    ));
    println!("{}", report.render());

    let payload = json(&results, threads, smoke, reps);
    let mut file = std::fs::File::create(&out_path).expect("create baseline json");
    file.write_all(payload.as_bytes())
        .expect("write baseline json");
    println!("wrote {out_path}");
}
