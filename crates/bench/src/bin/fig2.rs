//! Regenerate Fig. 2 of the paper (accuracy of the Ω-estimate). Scale
//! flags: `--quick`, `--full`, `--rows N`, `--seed S`.

use bgkanon_bench::{config::ExperimentConfig, fig2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, _) = ExperimentConfig::from_args(&args);
    print!("{}", fig2::run(&cfg));
}
