//! Fig. 3 — continuity of the worst-case disclosure risk (§V.C).
//!
//! * **(a)** generate (B,t)-private tables for table-side bandwidth
//!   `b ∈ {0.2, 0.225, …, 0.5}` and measure the worst-case disclosure risk
//!   against adversaries `b′ ∈ {0.2, 0.3, 0.4, 0.5}`: the risk must vary
//!   *continuously* in `b` (no jumps), which is what justifies protecting
//!   against all adversaries with a finite skyline;
//! * **(b)** two-block bandwidth `B = (b1,b1,b1,b2,b2,b2)` swept over a 4×4
//!   grid at fixed `b′ = 0.3` — the risk surface is likewise smooth.

use bgkanon::params::PARA1;
use bgkanon::privacy::Auditor;
use bgkanon::publisher::Publisher;

use crate::config::ExperimentConfig;
use crate::models::{auditor_for, B_PRIME_SWEEP};
use crate::report::{f3, Report};

/// The table-side bandwidth sweep of Fig. 3(a): 0.2 to 0.5 in steps of
/// 0.025.
pub fn b_sweep() -> Vec<f64> {
    (0..=12).map(|i| 0.2 + 0.025 * f64::from(i)).collect()
}

/// Fig. 3(a): worst-case risk as a function of the table's `b`.
pub fn run_a(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let auditors: Vec<Auditor> = B_PRIME_SWEEP
        .iter()
        .map(|&b| auditor_for(&table, b))
        .collect();
    let mut report = Report::new(
        &format!(
            "Fig 3(a): worst-case disclosure risk vs table bandwidth b (n={}, t={})",
            table.len(),
            PARA1.t
        ),
        &["b'=0.2", "b'=0.3", "b'=0.4", "b'=0.5"],
    );
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); B_PRIME_SWEEP.len()];
    for b in b_sweep() {
        let outcome = Publisher::new()
            .k_anonymity(PARA1.k)
            .bt_privacy(b, PARA1.t)
            .publish(&table)
            .expect("satisfiable");
        let cells: Vec<String> = auditors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let wc = outcome.audit_with(&table, a, PARA1.t).worst_case;
                series[i].push(wc);
                f3(wc)
            })
            .collect();
        report.row(&format!("b={b:.3}"), cells);
    }
    // Continuity diagnostic: largest jump between adjacent b values.
    let max_jump = series
        .iter()
        .flat_map(|s| s.windows(2).map(|w| (w[1] - w[0]).abs()))
        .fold(0.0, f64::max);
    report.note(&format!(
        "max jump between adjacent b values: {max_jump:.3} (continuity: small jumps)"
    ));
    report.render()
}

/// Fig. 3(b): worst-case risk over the `(b1, b2)` grid at `b′ = 0.3`.
pub fn run_b(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let auditor = auditor_for(&table, 0.3);
    let grid = [0.2, 0.3, 0.4, 0.5];
    let mut report = Report::new(
        &format!(
            "Fig 3(b): worst-case disclosure risk over (b1, b2) (n={}, b'=0.3, t={})",
            table.len(),
            PARA1.t
        ),
        &["b2=0.2", "b2=0.3", "b2=0.4", "b2=0.5"],
    );
    for &b1 in &grid {
        let cells: Vec<String> = grid
            .iter()
            .map(|&b2| {
                let bandwidth: Vec<f64> = vec![b1, b1, b1, b2, b2, b2];
                let outcome = Publisher::new()
                    .k_anonymity(PARA1.k)
                    .bt_privacy_vector(bandwidth, PARA1.t)
                    .publish(&table)
                    .expect("satisfiable");
                f3(outcome.audit_with(&table, &auditor, PARA1.t).worst_case)
            })
            .collect();
        report.row(&format!("b1={b1}"), cells);
    }
    report.note("paper: the risk surface varies continuously over the (b1, b2) domain");
    report.render()
}

/// Largest adjacent-`b` jump of the Fig. 3(a) series — the continuity
/// statistic used by tests.
pub fn max_continuity_jump(cfg: &ExperimentConfig) -> f64 {
    let table = cfg.table();
    let auditors: Vec<Auditor> = B_PRIME_SWEEP
        .iter()
        .map(|&b| auditor_for(&table, b))
        .collect();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); B_PRIME_SWEEP.len()];
    for b in b_sweep() {
        let outcome = Publisher::new()
            .k_anonymity(PARA1.k)
            .bt_privacy(b, PARA1.t)
            .publish(&table)
            .expect("satisfiable");
        for (i, a) in auditors.iter().enumerate() {
            series[i].push(outcome.audit_with(&table, a, PARA1.t).worst_case);
        }
    }
    series
        .iter()
        .flat_map(|s| s.windows(2).map(|w| (w[1] - w[0]).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_13_points() {
        let s = b_sweep();
        assert_eq!(s.len(), 13);
        assert!((s[0] - 0.2).abs() < 1e-12);
        assert!((s[12] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn risk_changes_continuously() {
        let cfg = ExperimentConfig {
            rows: 400,
            ..ExperimentConfig::quick()
        };
        let jump = max_continuity_jump(&cfg);
        // "Slight changes of the B parameter do not cause a large change of
        // the worst-case disclosure risk."
        assert!(jump < 0.25, "max adjacent jump {jump} too large");
    }

    #[test]
    fn fig3b_grid_renders() {
        let cfg = ExperimentConfig {
            rows: 300,
            ..ExperimentConfig::quick()
        };
        let out = run_b(&cfg);
        assert!(out.contains("b1=0.5"));
        assert!(out.contains("b2=0.2"));
    }
}
