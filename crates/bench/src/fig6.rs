//! Fig. 6 — aggregate query answering (§V-E.2).
//!
//! Average relative error of COUNT queries answered from each anonymized
//! table (para1 parameters):
//!
//! * **(a)** query dimension `qd ∈ {2..6}` at selectivity 0.07;
//! * **(b)** selectivity `sel ∈ {0.03, 0.05, 0.07, 0.1, 0.12}` at `qd = 3`.

use bgkanon::params::PARA1;
use bgkanon::utility::{average_relative_error, generate_queries, WorkloadConfig};

use crate::config::ExperimentConfig;
use crate::models::build_four;
use crate::report::{f1, Report};

/// The qd sweep of Fig. 6(a).
pub const QD_SWEEP: [usize; 5] = [2, 3, 4, 5, 6];

/// The selectivity sweep of Fig. 6(b).
pub const SEL_SWEEP: [f64; 5] = [0.03, 0.05, 0.07, 0.1, 0.12];

/// Fig. 6(a): error vs query dimension.
pub fn run_a(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let four = build_four(&table, &PARA1);
    let headers: Vec<String> = QD_SWEEP.iter().map(|q| format!("qd={q}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        &format!(
            "Fig 6(a): aggregate query relative error %% vs qd (n={}, sel=0.07)",
            table.len()
        ),
        &header_refs,
    );
    for (name, outcome) in &four {
        let cells: Vec<String> = QD_SWEEP
            .iter()
            .map(|&qd| {
                let wl = WorkloadConfig {
                    qd,
                    selectivity: 0.07,
                    queries: cfg.queries,
                    seed: cfg.seed,
                };
                let queries = generate_queries(&table, &wl);
                match average_relative_error(&table, &outcome.anonymized, &queries) {
                    Some(e) => f1(e),
                    None => "n/a".to_owned(),
                }
            })
            .collect();
        report.row(name, cells);
    }
    report.note("paper: error decreases with qd; see EXPERIMENTS.md for the deviation discussion");
    report.render()
}

/// Fig. 6(b): error vs selectivity.
pub fn run_b(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let four = build_four(&table, &PARA1);
    let headers: Vec<String> = SEL_SWEEP.iter().map(|s| format!("sel={s}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        &format!(
            "Fig 6(b): aggregate query relative error %% vs selectivity (n={}, qd=3)",
            table.len()
        ),
        &header_refs,
    );
    for (name, outcome) in &four {
        let cells: Vec<String> = SEL_SWEEP
            .iter()
            .map(|&sel| {
                let wl = WorkloadConfig {
                    qd: 3,
                    selectivity: sel,
                    queries: cfg.queries,
                    seed: cfg.seed,
                };
                let queries = generate_queries(&table, &wl);
                match average_relative_error(&table, &outcome.anonymized, &queries) {
                    Some(e) => f1(e),
                    None => "n/a".to_owned(),
                }
            })
            .collect();
        report.row(name, cells);
    }
    report
        .note("paper: error decreases with selectivity; (B,t) answers as accurately as the others");
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_figures_render() {
        let cfg = ExperimentConfig {
            rows: 400,
            queries: 50,
            ..ExperimentConfig::quick()
        };
        let a = run_a(&cfg);
        let b = run_b(&cfg);
        assert!(a.contains("qd=6"));
        assert!(b.contains("sel=0.12"));
        for name in crate::models::MODEL_NAMES {
            assert!(a.contains(name));
            assert!(b.contains(name));
        }
    }
}
