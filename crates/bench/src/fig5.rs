//! Fig. 5 — general utility measures (§V-E.1).
//!
//! Discernibility Metric (a) and Global Certainty Penalty (b) of the four
//! anonymized tables across the parameter sets. The paper's claim: the
//! (B,t)-private table shows utility comparable to the other three models.

use bgkanon::params::ALL_PARAMS;
use bgkanon::utility::{discernibility, global_certainty_penalty};

use crate::config::ExperimentConfig;
use crate::models::build_four;
use crate::report::{f1, Report};

/// Fig. 5(a): DM cost per model × parameter set.
pub fn run_a(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let mut report = Report::new(
        &format!("Fig 5(a): Discernibility Metric (n={})", table.len()),
        &["para1", "para2", "para3", "para4"],
    );
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); 4];
    for p in &ALL_PARAMS {
        let four = build_four(&table, p);
        for (i, (_, outcome)) in four.iter().enumerate() {
            cells[i].push(discernibility(&outcome.anonymized).to_string());
        }
    }
    for (i, name) in crate::models::MODEL_NAMES.iter().enumerate() {
        report.row(name, cells[i].clone());
    }
    report.note("paper: the (B,t)-private table shows comparable utility");
    report.render()
}

/// Fig. 5(b): GCP cost per model × parameter set.
pub fn run_b(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let mut report = Report::new(
        &format!("Fig 5(b): Global Certainty Penalty (n={})", table.len()),
        &["para1", "para2", "para3", "para4"],
    );
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); 4];
    for p in &ALL_PARAMS {
        let four = build_four(&table, p);
        for (i, (_, outcome)) in four.iter().enumerate() {
            cells[i].push(f1(global_certainty_penalty(&outcome.anonymized)));
        }
    }
    for (i, name) in crate::models::MODEL_NAMES.iter().enumerate() {
        report.row(name, cells[i].clone());
    }
    report.note("paper: the (B,t)-private table shows comparable utility");
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_figures_render() {
        let cfg = ExperimentConfig {
            rows: 300,
            ..ExperimentConfig::quick()
        };
        let a = run_a(&cfg);
        let b = run_b(&cfg);
        assert!(a.contains("Discernibility"));
        assert!(b.contains("Certainty"));
        for name in crate::models::MODEL_NAMES {
            assert!(a.contains(name));
            assert!(b.contains(name));
        }
    }
}
