//! The CI performance-regression gate: machine-readable checks over the
//! `BENCH_*.json` files the smoke benchmarks emit.
//!
//! Two invariants are enforced on every gated run:
//!
//! 1. **No drift, ever** — every `identical_output` flag anywhere in any
//!    benchmark document must be `true`. A speedup bought with divergent
//!    output is a correctness bug, not a regression, and fails the gate
//!    outright.
//! 2. **No silent 2× regression** — each rule in the committed thresholds
//!    file (`crates/bench/thresholds.json`) names a benchmark, a metric
//!    path and the expected value measured when the rule was committed. A
//!    `time_ms` metric fails when it exceeds **2×** the expectation; a
//!    `ratio` (throughput/speedup) metric fails when it drops below
//!    **half** of it. The 2× band absorbs runner-to-runner noise while
//!    still catching the step changes that matter.
//!
//! The workspace vendors no JSON dependency, so this module carries a
//! minimal recursive-descent parser for the subset the benchmarks emit
//! (objects, arrays, strings without escapes beyond `\"`/`\\`, numbers,
//! booleans, null) — enough to read back what `baseline.rs` writes.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Resolve a dotted metric path with optional `[i]` indexing, e.g.
    /// `sizes[0].parallel_total_ms` or `hub.audits_per_s`.
    pub fn lookup(&self, path: &str) -> Option<&Json> {
        let mut current = self;
        for part in path.split('.') {
            let (key, indexes) = match part.find('[') {
                Some(b) => (&part[..b], &part[b..]),
                None => (part, ""),
            };
            if !key.is_empty() {
                current = current.get(key)?;
            }
            for idx in indexes.split('[').filter(|s| !s.is_empty()) {
                let idx = idx.strip_suffix(']')?;
                current = current.at(idx.parse().ok()?)?;
            }
        }
        Some(current)
    }

    /// Collect every value stored under `key` anywhere in the document
    /// (depth-first), with its dotted path — how the gate finds all
    /// `identical_output` flags.
    pub fn find_all<'a>(&'a self, key: &str) -> Vec<(String, &'a Json)> {
        let mut found = Vec::new();
        self.find_all_into(key, "", &mut found);
        found
    }

    fn find_all_into<'a>(&'a self, key: &str, prefix: &str, out: &mut Vec<(String, &'a Json)>) {
        match self {
            Json::Obj(members) => {
                for (k, v) in members {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    if k == key {
                        out.push((path.clone(), v));
                    }
                    v.find_all_into(key, &path, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    v.find_all_into(key, &format!("{prefix}[{i}]"), out);
                }
            }
            _ => {}
        }
    }
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                expect(bytes, pos, b':')?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            other => {
                                return Err(format!("unsupported escape {other:?} at byte {pos}"))
                            }
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Advance over one UTF-8 scalar.
                        let start = *pos;
                        *pos += 1;
                        while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?,
                        );
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

/// The direction of one gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Wall-clock in milliseconds: fails when it grows past 2× expected.
    TimeMs,
    /// Throughput or speedup ratio: fails when it drops below expected/2.
    Ratio,
}

/// One committed threshold rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The `bench` field of the document the rule applies to.
    pub bench: String,
    /// Dotted metric path inside that document.
    pub metric: String,
    /// The metric's direction.
    pub kind: MetricKind,
    /// The committed expectation (the value observed when the rule was
    /// last calibrated).
    pub expected: f64,
}

impl Rule {
    /// The value at which this rule starts failing.
    pub fn limit(&self) -> f64 {
        match self.kind {
            MetricKind::TimeMs => self.expected * 2.0,
            MetricKind::Ratio => self.expected / 2.0,
        }
    }

    /// Does `value` violate the rule?
    pub fn violated_by(&self, value: f64) -> bool {
        match self.kind {
            MetricKind::TimeMs => value > self.limit(),
            MetricKind::Ratio => value < self.limit(),
        }
    }
}

/// Parse the committed thresholds document into rules.
pub fn parse_rules(thresholds: &Json) -> Result<Vec<Rule>, String> {
    let Some(Json::Arr(entries)) = thresholds.get("rules") else {
        return Err("thresholds file must have a top-level `rules` array".into());
    };
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let field = |k: &str| {
                entry
                    .get(k)
                    .ok_or_else(|| format!("rule {i}: missing `{k}`"))
            };
            let kind = match field("kind")?.as_str() {
                Some("time_ms") => MetricKind::TimeMs,
                Some("ratio") => MetricKind::Ratio,
                other => return Err(format!("rule {i}: bad kind {other:?}")),
            };
            Ok(Rule {
                bench: field("bench")?
                    .as_str()
                    .ok_or_else(|| format!("rule {i}: `bench` must be a string"))?
                    .to_owned(),
                metric: field("metric")?
                    .as_str()
                    .ok_or_else(|| format!("rule {i}: `metric` must be a string"))?
                    .to_owned(),
                kind,
                expected: field("expected")?
                    .as_f64()
                    .ok_or_else(|| format!("rule {i}: `expected` must be a number"))?,
            })
        })
        .collect()
}

/// The verdict of one gate check, for reporting.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked (file, metric, rule).
    pub label: String,
    /// Human-readable detail (observed vs limit).
    pub detail: String,
    /// Did it pass?
    pub passed: bool,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} — {}",
            if self.passed { "PASS" } else { "FAIL" },
            self.label,
            self.detail
        )
    }
}

/// Run the gate over parsed benchmark documents (`(source label, doc)`).
/// Returns every individual check; the gate passes iff all of them do.
/// Every rule must find its benchmark among the documents — a missing
/// benchmark file is itself a failure (otherwise dropping a bench step
/// would silently disable its gate).
pub fn run_gate(rules: &[Rule], docs: &[(String, Json)]) -> Vec<Check> {
    let mut checks = Vec::new();
    // 1. No drift anywhere.
    for (source, doc) in docs {
        let flags = doc.find_all("identical_output");
        if flags.is_empty() {
            checks.push(Check {
                label: format!("{source}: identical_output"),
                detail: "document carries no identical_output flag".into(),
                passed: false,
            });
            continue;
        }
        for (path, value) in flags {
            let ok = value.as_bool() == Some(true);
            checks.push(Check {
                label: format!("{source}: {path}"),
                detail: if ok {
                    "bit-identical".into()
                } else {
                    format!("expected true, found {value:?}")
                },
                passed: ok,
            });
        }
    }
    // 2. No metric past its regression band.
    for rule in rules {
        let matching: Vec<&(String, Json)> = docs
            .iter()
            .filter(|(_, doc)| doc.get("bench").and_then(Json::as_str) == Some(rule.bench.as_str()))
            .collect();
        if matching.is_empty() {
            checks.push(Check {
                label: format!("{}: {}", rule.bench, rule.metric),
                detail: format!("no document with bench=\"{}\" was supplied", rule.bench),
                passed: false,
            });
            continue;
        }
        for (source, doc) in matching {
            let check = match doc.lookup(&rule.metric).and_then(Json::as_f64) {
                None => Check {
                    label: format!("{source}: {}", rule.metric),
                    detail: "metric missing from document".into(),
                    passed: false,
                },
                Some(value) => {
                    let passed = !rule.violated_by(value);
                    let relation = match rule.kind {
                        MetricKind::TimeMs => "≤",
                        MetricKind::Ratio => "≥",
                    };
                    Check {
                        label: format!("{source}: {}", rule.metric),
                        detail: format!(
                            "{value:.3} (must stay {relation} {:.3}; committed expectation \
                             {:.3})",
                            rule.limit(),
                            rule.expected
                        ),
                        passed,
                    }
                }
            };
            checks.push(check);
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "bench": "baseline",
        "threads": 1,
        "sizes": [
            {"rows": 1000, "parallel_total_ms": 4.25, "identical_output": true},
            {"rows": 2000, "parallel_total_ms": 9.5, "identical_output": true}
        ],
        "label": "smoke \"run\""
    }"#;

    #[test]
    fn parse_roundtrip_and_lookup() {
        let doc = parse(DOC).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("baseline"));
        assert_eq!(doc.get("threads").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            doc.lookup("sizes[1].parallel_total_ms").unwrap().as_f64(),
            Some(9.5)
        );
        assert_eq!(doc.lookup("sizes[0].rows").unwrap().as_f64(), Some(1000.0));
        assert_eq!(doc.get("label").unwrap().as_str(), Some("smoke \"run\""));
        assert!(doc.lookup("sizes[9].rows").is_none());
        assert!(doc.lookup("missing.path").is_none());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("[1, 2] trailing").is_err());
        assert_eq!(
            parse("[-1.5e2, null]").unwrap().at(0).unwrap().as_f64(),
            Some(-150.0)
        );
    }

    #[test]
    fn find_all_walks_nested_structures() {
        let doc = parse(DOC).unwrap();
        let flags = doc.find_all("identical_output");
        assert_eq!(flags.len(), 2);
        assert_eq!(flags[0].0, "sizes[0].identical_output");
        assert!(flags.iter().all(|(_, v)| v.as_bool() == Some(true)));
    }

    fn rules() -> Vec<Rule> {
        parse_rules(
            &parse(
                r#"{"rules": [
                    {"bench": "baseline", "metric": "sizes[0].parallel_total_ms",
                     "kind": "time_ms", "expected": 5.0},
                    {"bench": "concurrent", "metric": "audit_speedup",
                     "kind": "ratio", "expected": 4.0}
                ]}"#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rule_bands_are_two_x() {
        let rules = rules();
        assert_eq!(rules[0].limit(), 10.0);
        assert!(!rules[0].violated_by(9.9));
        assert!(rules[0].violated_by(10.1));
        assert_eq!(rules[1].limit(), 2.0);
        assert!(!rules[1].violated_by(2.1));
        assert!(rules[1].violated_by(1.9));
    }

    #[test]
    fn gate_passes_a_healthy_run() {
        let docs = vec![
            ("base.json".to_owned(), parse(DOC).unwrap()),
            (
                "conc.json".to_owned(),
                parse(
                    r#"{"bench": "concurrent", "audit_speedup": 5.5,
                        "identical_output": true}"#,
                )
                .unwrap(),
            ),
        ];
        let checks = run_gate(&rules(), &docs);
        assert!(checks.iter().all(|c| c.passed), "{checks:#?}");
    }

    #[test]
    fn gate_fails_on_drift_regression_and_missing_bench() {
        let drifted = parse(
            r#"{"bench": "concurrent", "audit_speedup": 1.0,
                "identical_output": false}"#,
        )
        .unwrap();
        let docs = vec![("conc.json".to_owned(), drifted)];
        let checks = run_gate(&rules(), &docs);
        // identical_output false, ratio below half, and the baseline
        // document missing entirely — three failures.
        let failures: Vec<&Check> = checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(failures.len(), 3, "{checks:#?}");
        assert!(failures
            .iter()
            .any(|c| c.label.contains("identical_output")));
        assert!(failures.iter().any(|c| c.detail.contains("no document")));
        let rendered = format!("{}", failures[0]);
        assert!(rendered.starts_with("FAIL"));
    }

    #[test]
    fn gate_fails_on_missing_metric_or_flag() {
        let no_flag = parse(r#"{"bench": "baseline", "sizes": []}"#).unwrap();
        let docs = vec![("x.json".to_owned(), no_flag)];
        let checks = run_gate(&rules()[..1], &docs);
        assert!(checks
            .iter()
            .any(|c| !c.passed && c.detail.contains("no identical_output")));
        assert!(checks
            .iter()
            .any(|c| !c.passed && c.detail.contains("metric missing")));
    }

    #[test]
    fn parse_rules_rejects_malformed_thresholds() {
        assert!(parse_rules(&parse(r#"{"no_rules": 1}"#).unwrap()).is_err());
        assert!(parse_rules(
            &parse(
                r#"{"rules": [{"bench": "b", "metric": "m", "kind": "sideways", "expected": 1}]}"#
            )
            .unwrap()
        )
        .is_err());
        assert!(parse_rules(
            &parse(r#"{"rules": [{"bench": "b", "metric": "m", "kind": "ratio"}]}"#).unwrap()
        )
        .is_err());
    }
}
