//! Plain-text report rendering: the same rows/series the paper's figures
//! plot, as aligned tables.

use std::fmt::Write as _;

/// A titled table of labelled rows.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
    notes: Vec<String>,
}

impl Report {
    /// Start a report with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Report {
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a labelled row of cells.
    pub fn row(&mut self, label: &str, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows.push((label.to_owned(), cells));
    }

    /// Append a free-form note printed under the table.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_owned());
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0)
            .max(8);
        let col_widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|(_, cells)| cells[i].chars().count())
                    .max()
                    .unwrap_or(0)
                    .max(c.chars().count())
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let mut header = format!("{:<label_width$}", "");
        for (c, w) in self.columns.iter().zip(&col_widths) {
            let _ = write!(header, "  {c:>w$}");
        }
        let _ = writeln!(out, "{header}");
        for (label, cells) in &self.rows {
            let mut line = format!("{label:<label_width$}");
            for (cell, w) in cells.iter().zip(&col_widths) {
                let _ = write!(line, "  {cell:>w$}");
            }
            let _ = writeln!(out, "{line}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

/// Format an `f64` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format an `f64` with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a duration in seconds with 2 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("demo", &["x", "longer"]);
        r.row("first", vec!["1".into(), "2".into()]);
        r.row("second-longer", vec!["10".into(), "20000".into()]);
        r.note("a note");
        let s = r.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("note: a note"));
        // All data lines have the same width.
        let lines: Vec<&str> = s.lines().skip(1).take(3).collect();
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("demo", &["x"]);
        r.row("a", vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(secs(std::time::Duration::from_millis(2500)), "2.50s");
    }
}
