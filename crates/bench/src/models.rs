//! Shared experiment machinery: building the four model tables of §V and
//! caching adversaries.

use std::sync::Arc;

use bgkanon::data::Table;
use bgkanon::knowledge::{Adversary, Bandwidth};
use bgkanon::params::PaperParams;
use bgkanon::privacy::Auditor;
use bgkanon::publisher::{PublishOutcome, Publisher};
use bgkanon::stats::SmoothedJs;

/// Display names of the four models, in the paper's order.
pub const MODEL_NAMES: [&str; 4] = [
    "distinct-l-diversity",
    "probabilistic-l-diversity",
    "t-closeness",
    "(B,t)-privacy",
];

/// Anonymize `table` under all four §V models with parameter set `p`
/// (each combined with k-anonymity, k = ℓ).
pub fn build_four(table: &Table, p: &PaperParams) -> Vec<(&'static str, PublishOutcome)> {
    let publishers = [
        Publisher::new().k_anonymity(p.k).distinct_l_diversity(p.l),
        Publisher::new()
            .k_anonymity(p.k)
            .probabilistic_l_diversity(p.l),
        Publisher::new().k_anonymity(p.k).t_closeness(p.t),
        Publisher::new().k_anonymity(p.k).bt_privacy(p.b, p.t),
    ];
    MODEL_NAMES
        .iter()
        .zip(publishers)
        .map(|(name, publisher)| {
            let outcome = publisher
                .publish(table)
                .unwrap_or_else(|e| panic!("{name} with {p:?} failed: {e}"));
            (*name, outcome)
        })
        .collect()
}

/// Build an auditor for the adversary `Adv(b′·1)` with the paper's
/// smoothed-JS measure. Estimating the prior model is the expensive step;
/// hold on to the result when auditing several releases.
pub fn auditor_for(table: &Table, b_prime: f64) -> Auditor {
    let adversary = Arc::new(Adversary::kernel(
        table,
        Bandwidth::uniform(b_prime, table.qi_count()).expect("positive bandwidth"),
    ));
    let measure = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));
    Auditor::new(adversary, measure)
}

/// The adversary bandwidths swept by the attack experiments.
pub const B_PRIME_SWEEP: [f64; 4] = [0.2, 0.3, 0.4, 0.5];

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon::params::PARA1;

    #[test]
    fn four_models_build_on_small_adult() {
        let t = bgkanon::data::adult::generate(400, 42);
        let four = build_four(&t, &PARA1);
        assert_eq!(four.len(), 4);
        for (name, outcome) in &four {
            assert!(outcome.anonymized.group_count() >= 1, "{name}");
        }
    }

    #[test]
    fn auditor_reusable_across_releases() {
        let t = bgkanon::data::adult::generate(300, 42);
        let auditor = auditor_for(&t, 0.3);
        let four = build_four(&t, &PARA1);
        for (_, outcome) in &four {
            let rep = outcome.audit_with(&t, &auditor, PARA1.t);
            assert!(rep.worst_case.is_finite());
        }
    }
}
