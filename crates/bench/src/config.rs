//! Experiment sizing and reproducibility knobs.

/// Scale and seeding of an experiment run.
///
/// The paper evaluates on the ~30K-tuple Adult dataset; the default here is
/// 10K so every figure regenerates in minutes on a laptop, with `--full`
/// restoring the paper's scale and `--quick` shrinking to CI size.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Number of synthetic Adult tuples.
    pub rows: usize,
    /// Generator seed.
    pub seed: u64,
    /// Queries per workload point (Fig. 6).
    pub queries: usize,
    /// Monte-Carlo trials per point (Fig. 2).
    pub trials: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            rows: 10_000,
            seed: 42,
            queries: 1_000,
            trials: 100,
        }
    }
}

impl ExperimentConfig {
    /// CI-sized run.
    pub fn quick() -> Self {
        ExperimentConfig {
            rows: 2_000,
            queries: 200,
            trials: 25,
            ..ExperimentConfig::default()
        }
    }

    /// The paper's scale (≈30K tuples).
    pub fn full() -> Self {
        ExperimentConfig {
            rows: bgkanon::data::adult::ADULT_DEFAULT_ROWS,
            ..ExperimentConfig::default()
        }
    }

    /// Parse command-line arguments shared by all figure binaries:
    /// `[--quick|--full] [--rows N] [--seed S]`. Unrecognized arguments are
    /// returned for the binary to interpret (e.g. the `a`/`b` sub-figure
    /// selector).
    pub fn from_args(args: &[String]) -> (Self, Vec<String>) {
        let mut cfg = ExperimentConfig::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => cfg = ExperimentConfig::quick(),
                "--full" => cfg = ExperimentConfig::full(),
                "--rows" => {
                    let v = it.next().expect("--rows needs a value");
                    cfg.rows = v.parse().expect("--rows needs an integer");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    cfg.seed = v.parse().expect("--seed needs an integer");
                }
                _ => rest.push(a.clone()),
            }
        }
        (cfg, rest)
    }

    /// The dataset for this configuration.
    pub fn table(&self) -> bgkanon::data::Table {
        bgkanon::data::adult::generate(self.rows, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(ExperimentConfig::quick().rows < ExperimentConfig::default().rows);
        assert_eq!(ExperimentConfig::full().rows, 30_162);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["a", "--rows", "500", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (cfg, rest) = ExperimentConfig::from_args(&args);
        assert_eq!(cfg.rows, 500);
        assert_eq!(cfg.seed, 9);
        assert_eq!(rest, vec!["a".to_string()]);
        let (cfg2, _) = ExperimentConfig::from_args(&["--quick".to_string()]);
        assert_eq!(cfg2.rows, 2_000);
    }

    #[test]
    fn table_generation_respects_rows() {
        let (cfg, _) = ExperimentConfig::from_args(&["--rows".into(), "123".into()]);
        assert_eq!(cfg.table().len(), 123);
    }
}
