//! Fig. 4 — efficiency (§V.D).
//!
//! * **(a)** wall-clock time to compute each of the four anonymized tables
//!   per parameter set. As in the paper, the (B,t) timing excludes the
//!   kernel estimation of the prior model (reported separately);
//! * **(b)** wall-clock time of the kernel estimation itself as a function
//!   of the bandwidth `b` and the input size (10K/15K/20K/25K).

use std::time::Instant;

use bgkanon::knowledge::{Bandwidth, PriorEstimator};
use bgkanon::params::ALL_PARAMS;
use std::sync::Arc;

use crate::config::ExperimentConfig;
use crate::models::build_four;
use crate::report::{secs, Report};

/// Fig. 4(a): anonymization time per model × parameter set.
pub fn run_a(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let mut report = Report::new(
        &format!("Fig 4(a): anonymization time (n={})", table.len()),
        &["para1", "para2", "para3", "para4"],
    );
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); 4];
    for p in &ALL_PARAMS {
        let four = build_four(&table, p);
        for (i, (_, outcome)) in four.iter().enumerate() {
            cells[i].push(secs(outcome.elapsed));
        }
    }
    for (i, name) in crate::models::MODEL_NAMES.iter().enumerate() {
        report.row(name, cells[i].clone());
    }
    report.note("paper: running time decreases with stricter parameters (top-down Mondrian)");
    report.note("(B,t) timing excludes background-knowledge estimation, as in the paper");
    report.render()
}

/// Input sizes of Fig. 4(b), scaled down proportionally when the configured
/// table is smaller than the paper's.
pub fn input_sizes(cfg: &ExperimentConfig) -> Vec<usize> {
    let full = [10_000usize, 15_000, 20_000, 25_000];
    if cfg.rows >= 25_000 {
        full.to_vec()
    } else {
        // Keep the 2:3:4:5 ratios at reduced scale.
        full.iter().map(|&n| n * cfg.rows / 25_000).collect()
    }
}

/// Fig. 4(b): background-knowledge estimation time vs `b` and input size.
pub fn run_b(cfg: &ExperimentConfig) -> String {
    let sizes = input_sizes(cfg);
    let headers: Vec<String> = sizes.iter().map(|n| format!("n={n}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "Fig 4(b): background-knowledge (kernel) estimation time",
        &header_refs,
    );
    for b in [0.2, 0.3, 0.4, 0.5] {
        let cells: Vec<String> = sizes
            .iter()
            .map(|&n| {
                let table = bgkanon::data::adult::generate(n, cfg.seed);
                let estimator = PriorEstimator::new(
                    Arc::clone(table.schema()),
                    Bandwidth::uniform(b, table.qi_count()).expect("positive bandwidth"),
                );
                let start = Instant::now();
                let model = estimator.estimate(&table);
                let elapsed = start.elapsed();
                assert!(!model.is_empty());
                secs(elapsed)
            })
            .collect();
        report.row(&format!("b={b}"), cells);
    }
    report.note("paper: estimation dominates anonymization but stays within minutes at 25K");
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_reports_all_models() {
        let cfg = ExperimentConfig {
            rows: 300,
            ..ExperimentConfig::quick()
        };
        let out = run_a(&cfg);
        for name in crate::models::MODEL_NAMES {
            assert!(out.contains(name));
        }
    }

    #[test]
    fn input_sizes_scale_down() {
        let cfg = ExperimentConfig {
            rows: 2_500,
            ..ExperimentConfig::quick()
        };
        assert_eq!(input_sizes(&cfg), vec![1_000, 1_500, 2_000, 2_500]);
        let full = ExperimentConfig::full();
        assert_eq!(input_sizes(&full), vec![10_000, 15_000, 20_000, 25_000]);
    }

    #[test]
    fn fig4b_runs_at_tiny_scale() {
        let cfg = ExperimentConfig {
            rows: 500,
            ..ExperimentConfig::quick()
        };
        let out = run_b(&cfg);
        assert!(out.contains("b=0.5"));
    }
}
