//! Fig. 2 — accuracy of the Ω-estimate (§V.B).
//!
//! Randomly pick a group of `N` tuples, give the adversary `Adv(b·1)` prior
//! beliefs over them, and compare the Ω-estimate against exact inference:
//! the average distance error
//! `ρ = (1/N) Σ_j |D[Pexa_j, Ppri_j] − D[Pome_j, Ppri_j]|`, averaged over
//! `trials` repetitions. The paper reports ρ within 0.1 everywhere.

use bgkanon::inference::accuracy::average_distance_error;
use bgkanon::inference::GroupPriors;
use bgkanon::knowledge::{Adversary, Bandwidth};
use bgkanon::stats::SmoothedJs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::ExperimentConfig;
use crate::report::{f3, Report};

/// Group sizes swept (the paper's N axis).
pub const N_SWEEP: [usize; 5] = [3, 5, 8, 10, 15];

/// Adversary bandwidths swept (the paper's four series).
pub const B_SWEEP: [f64; 4] = [0.2, 0.3, 0.4, 0.5];

/// Run the Fig. 2 experiment.
pub fn run(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let measure = SmoothedJs::paper_default(table.schema().sensitive_distance());
    let mut report = Report::new(
        &format!(
            "Fig 2: accuracy of the Omega-estimate (n={}, {} trials)",
            table.len(),
            cfg.trials
        ),
        &["N=3", "N=5", "N=8", "N=10", "N=15"],
    );
    for &b in &B_SWEEP {
        let adversary = Adversary::kernel(
            &table,
            Bandwidth::uniform(b, table.qi_count()).expect("positive bandwidth"),
        );
        let mut cells = Vec::with_capacity(N_SWEEP.len());
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (b * 1000.0) as u64);
        for &n_group in &N_SWEEP {
            let mut total = 0.0;
            for _ in 0..cfg.trials {
                let rows: Vec<usize> = (0..n_group)
                    .map(|_| rng.gen_range(0..table.len()))
                    .collect();
                let group =
                    GroupPriors::from_table_rows(&table, &rows, |qi| adversary.prior(qi).clone());
                total += average_distance_error(&group, &measure);
            }
            cells.push(f3(total / cfg.trials as f64));
        }
        report.row(&format!("b={b}"), cells);
    }
    report.note("paper: the Omega-estimate is within 0.1-distance of exact inference in all cases");
    report.render()
}

/// Maximum ρ over the whole sweep — used by tests and the summary.
pub fn max_rho(cfg: &ExperimentConfig) -> f64 {
    let table = cfg.table();
    let measure = SmoothedJs::paper_default(table.schema().sensitive_distance());
    let mut worst: f64 = 0.0;
    for &b in &B_SWEEP {
        let adversary = Adversary::kernel(
            &table,
            Bandwidth::uniform(b, table.qi_count()).expect("positive bandwidth"),
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (b * 1000.0) as u64);
        for &n_group in &N_SWEEP {
            let mut total = 0.0;
            for _ in 0..cfg.trials {
                let rows: Vec<usize> = (0..n_group)
                    .map(|_| rng.gen_range(0..table.len()))
                    .collect();
                let group =
                    GroupPriors::from_table_rows(&table, &rows, |qi| adversary.prior(qi).clone());
                total += average_distance_error(&group, &measure);
            }
            worst = worst.max(total / cfg.trials as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_accuracy_within_paper_bound() {
        let cfg = ExperimentConfig {
            rows: 500,
            trials: 10,
            ..ExperimentConfig::quick()
        };
        let rho = max_rho(&cfg);
        assert!(rho < 0.1, "max rho {rho} exceeds the paper's 0.1 bound");
    }

    #[test]
    fn report_has_all_series() {
        let cfg = ExperimentConfig {
            rows: 300,
            trials: 3,
            ..ExperimentConfig::quick()
        };
        let out = run(&cfg);
        for b in ["b=0.2", "b=0.3", "b=0.4", "b=0.5"] {
            assert!(out.contains(b), "{out}");
        }
    }
}
