//! # bgkanon-bench
//!
//! Experiment harness reproducing every figure of the paper's evaluation
//! (§V). One module per figure; each exposes `run(&ExperimentConfig)` that
//! executes the experiment and returns a printable report. Binaries wrap
//! the modules (`cargo run --release -p bgkanon-bench --bin fig1`), and the
//! `experiments` bench target replays everything at a reduced scale.
//!
//! | module | paper figure | what it measures |
//! |---|---|---|
//! | [`fig1`] | Fig. 1(a)/(b) | vulnerable tuples under background-knowledge attack |
//! | [`fig2`] | Fig. 2 | accuracy of the Ω-estimate (avg distance error ρ) |
//! | [`fig3`] | Fig. 3(a)/(b) | continuity of worst-case disclosure risk in `B` |
//! | [`fig4`] | Fig. 4(a)/(b) | efficiency: anonymization & knowledge estimation |
//! | [`fig5`] | Fig. 5(a)/(b) | general utility: DM and GCP |
//! | [`fig6`] | Fig. 6(a)/(b) | aggregate query answering error |
//! | [`ablation`] | — | kernel family, measure smoothing, exact-vs-Ω, rule subsumption |
//!
//! [`gate`] is not an experiment: it implements the CI perf-regression gate
//! (`--bin perfgate`) that checks the smoke benchmarks' JSON against the
//! committed thresholds in `crates/bench/thresholds.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod config;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod gate;
pub mod models;
pub mod report;

pub use config::ExperimentConfig;
