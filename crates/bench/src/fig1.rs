//! Fig. 1 — probabilistic background-knowledge attack (§V.A).
//!
//! Number of vulnerable tuples (disclosure risk above the threshold `t`)
//! in each of the four anonymized tables:
//!
//! * **(a)** fixed parameters (para1), adversary strength `b′` swept over
//!   `{0.2, 0.3, 0.4, 0.5}`;
//! * **(b)** fixed adversary `b′ = 0.3`, parameters swept over para1–para4;
//! * **(c)** *extension*: the same attack with the adversary's prior
//!   estimated from a disjoint sample of the population instead of the
//!   released table itself (see EXPERIMENTS.md for why this variant
//!   reproduces the paper's monotone trend).

use bgkanon::params::{ALL_PARAMS, PARA1};
use bgkanon::privacy::Auditor;
use bgkanon::stats::SmoothedJs;
use std::sync::Arc;

use crate::config::ExperimentConfig;
use crate::models::{auditor_for, build_four, B_PRIME_SWEEP};
use crate::report::Report;

/// Fig. 1(a): vulnerable tuples vs adversary bandwidth `b′`.
pub fn run_a(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let four = build_four(&table, &PARA1);
    let mut report = Report::new(
        &format!(
            "Fig 1(a): vulnerable tuples vs b' (n={}, para1: k=l={}, t={})",
            table.len(),
            PARA1.k,
            PARA1.t
        ),
        &["b'=0.2", "b'=0.3", "b'=0.4", "b'=0.5"],
    );
    let auditors: Vec<Auditor> = B_PRIME_SWEEP
        .iter()
        .map(|&b| auditor_for(&table, b))
        .collect();
    for (name, outcome) in &four {
        let cells = auditors
            .iter()
            .map(|a| {
                outcome
                    .audit_with(&table, a, PARA1.t)
                    .vulnerable
                    .to_string()
            })
            .collect();
        report.row(name, cells);
    }
    report.note("paper: counts decrease with b'; (B,t)-privacy far below the others");
    report.render()
}

/// Fig. 1(b): vulnerable tuples vs privacy parameters at `b′ = 0.3`.
pub fn run_b(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let auditor = auditor_for(&table, 0.3);
    let mut report = Report::new(
        &format!(
            "Fig 1(b): vulnerable tuples vs privacy parameters (n={}, b'=0.3)",
            table.len()
        ),
        &["para1", "para2", "para3", "para4"],
    );
    // rows[model] = counts per parameter set.
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); 4];
    for p in &ALL_PARAMS {
        let four = build_four(&table, p);
        for (i, (_, outcome)) in four.iter().enumerate() {
            cells[i].push(
                outcome
                    .audit_with(&table, &auditor, p.t)
                    .vulnerable
                    .to_string(),
            );
        }
    }
    for (i, name) in crate::models::MODEL_NAMES.iter().enumerate() {
        report.row(name, cells[i].clone());
    }
    report
        .note("paper: the (B,t)-private table contains much fewer vulnerable tuples in all cases");
    report.render()
}

/// Fig. 1(c) extension: disjoint-sample adversary.
pub fn run_c(cfg: &ExperimentConfig) -> String {
    let table = cfg.table();
    let background = bgkanon::data::adult::generate(cfg.rows, cfg.seed.wrapping_add(1_000));
    let four = build_four(&table, &PARA1);
    let measure = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));
    let mut report = Report::new(
        &format!(
            "Fig 1(c) extension: disjoint-sample adversary (n={}, para1)",
            table.len()
        ),
        &["b'=0.2", "b'=0.3", "b'=0.4", "b'=0.5"],
    );
    let auditors: Vec<Auditor> = B_PRIME_SWEEP
        .iter()
        .map(|&b| {
            let adv = Arc::new(bgkanon::knowledge::Adversary::kernel(
                &background,
                bgkanon::knowledge::Bandwidth::uniform(b, table.qi_count()).expect("positive"),
            ));
            Auditor::new(adv, Arc::clone(&measure) as _)
        })
        .collect();
    for (name, outcome) in &four {
        let cells = auditors
            .iter()
            .map(|a| {
                outcome
                    .audit_with(&table, a, PARA1.t)
                    .vulnerable
                    .to_string()
            })
            .collect();
        report.row(name, cells);
    }
    report.note(
        "priors estimated from an independent sample: counts decrease with b' as in the paper",
    );
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            rows: 300,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn fig1a_produces_four_rows() {
        let out = run_a(&tiny());
        assert!(out.contains("(B,t)-privacy"));
        assert!(out.contains("t-closeness"));
        assert_eq!(out.lines().filter(|l| l.contains("diversity")).count(), 2);
    }

    #[test]
    fn fig1b_covers_all_params() {
        let out = run_b(&tiny());
        assert!(out.contains("para4"));
        assert!(out.contains("(B,t)-privacy"));
    }

    #[test]
    fn fig1c_runs() {
        let out = run_c(&tiny());
        assert!(out.contains("disjoint-sample"));
    }
}
