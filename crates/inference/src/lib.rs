//! # bgkanon-inference
//!
//! Computing the adversary's posterior belief (§III of the paper).
//!
//! After anonymization the adversary knows, for each released group `E`, the
//! multiset `S` of sensitive values it carries, but not the mapping between
//! tuples and values. Combining her prior beliefs with Bayes' rule gives the
//! posterior `P*(s_i | t_j)`:
//!
//! * [`exact`] implements the general formula (Eq. 3–4), whose likelihood
//!   term is a matrix permanent — exponential, but exact; used for small
//!   groups and for validating the approximation;
//! * [`omega`] implements the Ω-estimate (Eq. 5), the paper's linear-time
//!   approximation generalizing Lakshmanan et al.'s O-estimate under the
//!   random-world assumption;
//! * [`accuracy`] measures the Ω-estimate's average distance error ρ
//!   (the Fig. 2 experiment);
//! * [`relational`] implements the paper's §VII future-work extension:
//!   same-value-family knowledge over a relationship graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod exact;
pub mod group;
pub mod omega;
pub mod relational;

pub use exact::exact_posteriors;
pub use group::GroupPriors;
pub use omega::{omega_column_sums, omega_posterior_into, omega_posteriors};
pub use relational::{relational_posteriors, RelationalKnowledge};
