//! The Ω-estimate (§III.D, Eq. 5): linear-time approximate posterior.
//!
//! Under the random-world assumption — every reasonable mapping between
//! tuples and sensitive values equally probable — the posterior is
//! approximated by
//!
//! ```text
//!               n_i · P(s_i|t_j) / Σ_j' P(s_i|t_j')
//! Ω(s_i|t_j) = ─────────────────────────────────────
//!               Σ_r n_r · P(s_r|t_j) / Σ_j' P(s_r|t_j')
//! ```
//!
//! equivalent to dropping the dependence of `P(S\{s_i}|E\{t_j})` on `j` in
//! the exact formula. Cost: `O(k·m)` per group. The estimate is *not* exact
//! — the paper's Table III example (exact 1.0 vs Ω ≈ 0.66) is reproduced in
//! the tests — but its average distance error stays small in practice
//! (Fig. 2).

use bgkanon_stats::Dist;

use crate::group::GroupPriors;

/// Ω-estimate posterior distributions for every tuple in the group.
///
/// ```
/// use bgkanon_inference::{omega_posteriors, GroupPriors};
/// use bgkanon_stats::Dist;
///
/// // The paper's §III.B group: two low-risk tuples and t3 at 30% HIV risk.
/// let priors = vec![
///     Dist::new(vec![0.05, 0.95]).unwrap(),
///     Dist::new(vec![0.05, 0.95]).unwrap(),
///     Dist::new(vec![0.30, 0.70]).unwrap(),
/// ];
/// let group = GroupPriors::new(priors, &[1, 1, 0]); // multiset {none,none,HIV}
/// let posterior = omega_posteriors(&group);
/// // Seeing the release raises the adversary's belief about t3.
/// assert!(posterior[2].get(0) > 0.30);
/// ```
///
/// Always well-defined: when the priors of an entire column are zero (no
/// tuple could take a value that is nevertheless in the multiset — possible
/// only with priors inconsistent with the data) the column is skipped, and a
/// tuple whose every term vanishes falls back to the bucket distribution
/// `n_s / k`.
pub fn omega_posteriors(group: &GroupPriors) -> Vec<Dist> {
    let k = group.len();
    let m = group.domain_size();
    let counts = group.counts();

    let mut col_sums = vec![0.0f64; m];
    omega_column_sums((0..k).map(|j| group.prior(j)), &mut col_sums);

    let bucket = group.bucket_distribution();
    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        let mut w = vec![0.0f64; m];
        if omega_posterior_into(group.prior(j), counts, &col_sums, &mut w) {
            out.push(Dist::new(w).expect("normalized"));
        } else {
            out.push(bucket.clone());
        }
    }
    out
}

/// Accumulate the column sums `Σ_j' P(s_i | t_j')` over the group's priors
/// into `col_sums` (which must already be sized to the sensitive domain and
/// zeroed). Exposed so batch auditors can drive the Ω-estimate without
/// materializing a [`GroupPriors`].
pub fn omega_column_sums<'a>(priors: impl Iterator<Item = &'a Dist>, col_sums: &mut [f64]) {
    for p in priors {
        // Zipped flat scan over the prior's probability vector — same
        // ascending-`s` accumulation order as an indexed loop, so results
        // are bit-identical, without the per-element bounds checks.
        for (cs, &x) in col_sums.iter_mut().zip(p.as_slice()) {
            *cs += x;
        }
    }
}

/// Write one tuple's Ω-posterior into `out` (sized to the sensitive domain),
/// given its prior, the group multiset `counts` and the precomputed
/// [`omega_column_sums`]. Returns `false` when every term vanishes — the
/// caller must then fall back to the bucket distribution `n_s / k`, exactly
/// as [`omega_posteriors`] does.
///
/// The arithmetic (term order, normalization) is identical to
/// [`omega_posteriors`], so results agree bit-for-bit.
pub fn omega_posterior_into(
    prior: &Dist,
    counts: &[u32],
    col_sums: &[f64],
    out: &mut [f64],
) -> bool {
    let mut total = 0.0f64;
    // One zipped pass over four equal-length slices, in ascending `s` order
    // (the same term order as an indexed loop — bit-identical totals).
    for (((slot, &c), &cs), &p) in out
        .iter_mut()
        .zip(counts)
        .zip(col_sums)
        .zip(prior.as_slice())
    {
        if c > 0 && cs > 0.0 {
            let term = f64::from(c) * p / cs;
            *slot = term;
            total += term;
        } else {
            *slot = 0.0;
        }
    }
    if total > 0.0 {
        for x in out.iter_mut() {
            *x /= total;
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_posteriors;
    use bgkanon_data::toy;

    fn d(v: &[f64]) -> Dist {
        Dist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn table_iii_inexactness_is_reproduced() {
        // Ω(HIV|t3) = (1 · 0.3/0.3) / (1 · 0.3/0.3 + 2 · 0.7/2.7) ≈ 0.6585
        // (the paper prints 0.66), although the exact posterior is 1.
        let (priors, codes) = toy::hiv_example_priors_zero();
        let priors: Vec<Dist> = priors.into_iter().map(|p| Dist::new(p).unwrap()).collect();
        let group = GroupPriors::new(priors, &codes);
        let omega = omega_posteriors(&group);
        let expect = 1.0 / (1.0 + 2.0 * 0.7 / 2.7);
        assert!(
            (omega[2].get(0) - expect).abs() < 1e-12,
            "got {}, expect {expect}",
            omega[2].get(0)
        );
        assert!((expect - 0.66).abs() < 0.01);
    }

    #[test]
    fn paper_hiv_example_omega_close_to_exact() {
        let (priors, codes) = toy::hiv_example_priors();
        let priors: Vec<Dist> = priors.into_iter().map(|p| Dist::new(p).unwrap()).collect();
        let group = GroupPriors::new(priors, &codes);
        let omega = omega_posteriors(&group);
        let exact = exact_posteriors(&group);
        // Ω(HIV|t3) = (0.3/0.4) / (0.3/0.4 + 2·0.7/2.6) = 0.75/1.288… ≈ 0.58
        // vs exact 0.80 — same direction, bounded error.
        assert!(omega[2].get(0) > group.prior(2).get(0));
        assert!((omega[2].get(0) - exact[2].get(0)).abs() < 0.25);
    }

    #[test]
    fn uniform_priors_make_omega_exact() {
        // Under equal priors the random-world assumption holds exactly, so
        // Ω must coincide with the exact posterior (= bucket distribution).
        let priors = vec![Dist::uniform(3); 5];
        let group = GroupPriors::new(priors, &[0, 0, 1, 2, 2]);
        let omega = omega_posteriors(&group);
        let exact = exact_posteriors(&group);
        for (o, e) in omega.iter().zip(&exact) {
            assert!(o.max_abs_diff(e) < 1e-12);
        }
    }

    #[test]
    fn equal_rows_make_omega_exact() {
        // More generally: identical (not necessarily uniform) priors for all
        // tuples ⇒ P(S\{s}|E\{t_j}) is independent of j ⇒ Ω exact.
        let p = d(&[0.5, 0.3, 0.2]);
        let priors = vec![p; 4];
        let group = GroupPriors::new(priors, &[0, 1, 1, 2]);
        let omega = omega_posteriors(&group);
        let exact = exact_posteriors(&group);
        for (o, e) in omega.iter().zip(&exact) {
            assert!(o.max_abs_diff(e) < 1e-12, "Ω {o} vs exact {e}");
        }
    }

    #[test]
    fn omega_outputs_valid_distributions() {
        let priors = vec![
            d(&[0.9, 0.05, 0.05]),
            d(&[0.1, 0.5, 0.4]),
            d(&[0.2, 0.2, 0.6]),
        ];
        let group = GroupPriors::new(priors, &[0, 1, 2]);
        for p in omega_posteriors(&group) {
            let s: f64 = p.as_slice().iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn omega_zero_support_on_absent_values() {
        let priors = vec![d(&[0.25, 0.25, 0.5]), d(&[0.5, 0.25, 0.25])];
        let group = GroupPriors::new(priors, &[0, 0]);
        for p in omega_posteriors(&group) {
            // Values 1, 2 are not in the multiset.
            assert_eq!(p.get(1), 0.0);
            assert_eq!(p.get(2), 0.0);
            assert!((p.get(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inconsistent_priors_fall_back_to_bucket() {
        // Both tuples certain of value 0, multiset {0, 1}: column 1 has zero
        // prior support; tuples keep a normalized estimate (all mass on 0).
        let group = GroupPriors::new(vec![d(&[1.0, 0.0]), d(&[1.0, 0.0])], &[0, 1]);
        let omega = omega_posteriors(&group);
        for p in &omega {
            let s: f64 = p.as_slice().iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn omega_scales_to_large_groups() {
        // 500 tuples — far beyond exact inference — in well under a second.
        let priors: Vec<Dist> = (0..500)
            .map(|i| {
                let a = 0.2 + 0.6 * ((i % 7) as f64 / 6.0);
                d(&[a, 1.0 - a])
            })
            .collect();
        let codes: Vec<u32> = (0..500).map(|i| u32::from(i % 3 == 0)).collect();
        let group = GroupPriors::new(priors, &codes);
        let posts = omega_posteriors(&group);
        assert_eq!(posts.len(), 500);
    }
}
