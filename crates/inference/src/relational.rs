//! Relational background knowledge — the paper's §VII future-work
//! direction, implemented for small groups.
//!
//! The kernel framework assumes tuple independence (§II.D). The paper
//! sketches the missing piece: *"One example of such kinds of knowledge may
//! be 'either Alice or Bob has flu but not both'. One approach is to use
//! graphs, where nodes represent individuals and edges represent
//! relationships."*
//!
//! [`RelationalKnowledge`] is exactly that graph: edges between group
//! members carrying a multiplicative factor applied when the two endpoints
//! receive the **same** sensitive value.
//!
//! * `strength > 1` — a *same-value family* (Chen et al.'s third knowledge
//!   type): relatives/partners tend to share the value;
//! * `strength < 1` — anti-correlation ("not both");
//! * `strength = 0` — hard exclusion (at most one of the two has the
//!   value — the paper's flu example).
//!
//! The posterior sums over all consistent assignments of the group's
//! multiset, weighting each by `Π_j P(s_{σ(j)}|t_j) · Π_{(a,b)∈E, σ(a)=σ(b)}
//! strength(a,b)` — exponential like any exact inference, so groups are
//! capped at [`MAX_EXACT_GROUP`].

use bgkanon_stats::permanent::MAX_EXACT_GROUP;
use bgkanon_stats::Dist;

use crate::group::GroupPriors;

/// A same-value relationship graph over the members of one group.
///
/// Indices refer to positions within the group (0-based), not table rows.
#[derive(Debug, Clone, Default)]
pub struct RelationalKnowledge {
    edges: Vec<(usize, usize, f64)>,
}

impl RelationalKnowledge {
    /// No relational knowledge: reduces to ordinary exact inference.
    pub fn none() -> Self {
        RelationalKnowledge::default()
    }

    /// Declare that members `a` and `b` share sensitive values with the
    /// given multiplicative `strength ≥ 0` (1 = independent, >1 same-value
    /// family, 0 = never the same value).
    pub fn with_pair(mut self, a: usize, b: usize, strength: f64) -> Self {
        assert!(a != b, "an edge needs two distinct members");
        assert!(
            strength >= 0.0 && strength.is_finite(),
            "strength must be a finite non-negative factor"
        );
        self.edges.push((a.min(b), a.max(b), strength));
        self
    }

    /// The declared edges.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Weight multiplier of a complete assignment `sigma`.
    fn assignment_factor(&self, sigma: &[usize]) -> f64 {
        let mut w = 1.0;
        for &(a, b, strength) in &self.edges {
            if sigma[a] == sigma[b] {
                w *= strength;
            }
        }
        w
    }
}

/// Exact posteriors under relational knowledge: enumerate every distinct
/// assignment of the multiset, weight by priors and same-value factors,
/// marginalize per tuple.
///
/// # Panics
///
/// Panics if the group exceeds [`MAX_EXACT_GROUP`], an edge references a
/// member outside the group, or the knowledge excludes every assignment
/// consistent with the multiset.
pub fn relational_posteriors(group: &GroupPriors, knowledge: &RelationalKnowledge) -> Vec<Dist> {
    let k = group.len();
    assert!(
        k <= MAX_EXACT_GROUP,
        "group of size {k} exceeds MAX_EXACT_GROUP = {MAX_EXACT_GROUP}"
    );
    for &(a, b, _) in knowledge.edges() {
        assert!(
            b < k,
            "edge ({a},{b}) references a member outside the group"
        );
    }
    let m = group.domain_size();

    // Enumerate assignments recursively, accumulating marginal mass.
    struct Search<'a> {
        group: &'a GroupPriors,
        knowledge: &'a RelationalKnowledge,
        remaining: Vec<u32>,
        sigma: Vec<usize>,
        /// `marginal[j][s]` = total weight of assignments where tuple j
        /// receives value s.
        marginal: Vec<Vec<f64>>,
        total: f64,
    }

    impl Search<'_> {
        fn rec(&mut self, j: usize, weight: f64) {
            if j == self.group.len() {
                let w = weight * self.knowledge.assignment_factor(&self.sigma);
                if w > 0.0 {
                    self.total += w;
                    for (jj, &s) in self.sigma.iter().enumerate() {
                        self.marginal[jj][s] += w;
                    }
                }
                return;
            }
            for s in 0..self.remaining.len() {
                if self.remaining[s] == 0 {
                    continue;
                }
                let p = self.group.prior(j).get(s);
                if p == 0.0 {
                    continue;
                }
                self.remaining[s] -= 1;
                self.sigma[j] = s;
                self.rec(j + 1, weight * p);
                self.sigma[j] = usize::MAX;
                self.remaining[s] += 1;
            }
        }
    }

    let mut search = Search {
        group,
        knowledge,
        remaining: group.counts().to_vec(),
        sigma: vec![usize::MAX; k],
        marginal: vec![vec![0.0f64; m]; k],
        total: 0.0,
    };
    search.rec(0, 1.0);
    let (marginal, total) = (search.marginal, search.total);
    assert!(
        total > 0.0,
        "relational knowledge excludes every assignment consistent with the multiset"
    );
    marginal
        .into_iter()
        .map(|row| {
            let p: Vec<f64> = row.into_iter().map(|x| x / total).collect();
            Dist::new(p).expect("normalized marginal")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_posteriors;

    fn d(v: &[f64]) -> Dist {
        Dist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn no_knowledge_matches_plain_exact_inference() {
        let priors = vec![
            d(&[0.6, 0.3, 0.1]),
            d(&[0.2, 0.7, 0.1]),
            d(&[0.1, 0.2, 0.7]),
            d(&[0.34, 0.33, 0.33]),
        ];
        let group = GroupPriors::new(priors, &[0, 1, 2, 0]);
        let plain = exact_posteriors(&group);
        let relational = relational_posteriors(&group, &RelationalKnowledge::none());
        for (a, b) in plain.iter().zip(&relational) {
            assert!(a.max_abs_diff(b) < 1e-12);
        }
    }

    #[test]
    fn flu_but_not_both_shifts_mass() {
        // Multiset {flu, flu, cold}: Alice (0) and Bob (1) cannot both have
        // flu, so one of them must take cold; Carol (2) must take flu.
        let priors = vec![Dist::uniform(2); 3]; // 0 = flu, 1 = cold
        let group = GroupPriors::new(priors, &[0, 0, 1]);
        let knowledge = RelationalKnowledge::none().with_pair(0, 1, 0.0);
        let posts = relational_posteriors(&group, &knowledge);
        // Carol gets flu with certainty.
        assert!((posts[2].get(0) - 1.0).abs() < 1e-12);
        // Alice and Bob split flu/cold evenly.
        assert!((posts[0].get(0) - 0.5).abs() < 1e-12);
        assert!((posts[1].get(0) - 0.5).abs() < 1e-12);
        // Without the constraint Carol's flu probability is only 2/3.
        let plain = exact_posteriors(&group);
        assert!((plain[2].get(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_value_family_pulls_members_together() {
        // {hiv, none, none}; members 0 and 1 are a same-value family.
        let priors = vec![d(&[0.3, 0.7]), d(&[0.3, 0.7]), d(&[0.3, 0.7])];
        let group = GroupPriors::new(priors, &[0, 1, 1]);
        let coupled = RelationalKnowledge::none().with_pair(0, 1, 10.0);
        let posts = relational_posteriors(&group, &coupled);
        let plain = exact_posteriors(&group);
        // Only value `none` (code 1) can be shared (hiv appears once), so
        // the family factor boosts assignments where 0 and 1 both take
        // none, pushing the lone hiv onto member 2.
        assert!(
            posts[2].get(0) > plain[2].get(0),
            "family {} vs plain {}",
            posts[2].get(0),
            plain[2].get(0)
        );
    }

    #[test]
    fn marginals_remain_distributions_and_respect_multiset() {
        let priors = vec![
            d(&[0.5, 0.25, 0.25]),
            d(&[0.2, 0.6, 0.2]),
            d(&[0.1, 0.1, 0.8]),
        ];
        let group = GroupPriors::new(priors, &[0, 1, 2]);
        let knowledge = RelationalKnowledge::none()
            .with_pair(0, 1, 2.0)
            .with_pair(1, 2, 0.5);
        let posts = relational_posteriors(&group, &knowledge);
        for p in &posts {
            let s: f64 = p.as_slice().iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // Column sums still equal the multiplicities (marginals of a
        // distribution over assignments of the fixed multiset).
        for v in 0..3 {
            let col: f64 = posts.iter().map(|p| p.get(v)).sum();
            assert!((col - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "excludes every assignment")]
    fn contradictory_knowledge_detected() {
        // Multiset {a, a}: both members must take `a`, but the edge says
        // they never share a value.
        let priors = vec![Dist::uniform(2); 2];
        let group = GroupPriors::new(priors, &[0, 0]);
        let knowledge = RelationalKnowledge::none().with_pair(0, 1, 0.0);
        let _ = relational_posteriors(&group, &knowledge);
    }

    #[test]
    #[should_panic(expected = "outside the group")]
    fn out_of_range_edge_rejected() {
        let priors = vec![Dist::uniform(2); 2];
        let group = GroupPriors::new(priors, &[0, 1]);
        let knowledge = RelationalKnowledge::none().with_pair(0, 5, 1.0);
        let _ = relational_posteriors(&group, &knowledge);
    }

    #[test]
    #[should_panic(expected = "two distinct members")]
    fn self_edge_rejected() {
        let _ = RelationalKnowledge::none().with_pair(1, 1, 2.0);
    }
}
