//! A released group as the adversary sees it: per-tuple priors plus the
//! group's sensitive-value multiset.

use bgkanon_data::Table;
use bgkanon_stats::Dist;

/// The adversary's view of one anonymized group `E` with sensitive multiset
/// `S` (§III.C): `priors[j]` is her prior belief about tuple `t_j`, and
/// `counts[s]` is the multiplicity `n_s` of sensitive value `s` in `S`.
///
/// ```
/// use bgkanon_inference::GroupPriors;
/// use bgkanon_stats::Dist;
///
/// let group = GroupPriors::new(vec![Dist::uniform(2); 3], &[0, 1, 1]);
/// assert_eq!(group.counts(), &[1, 2]);
/// assert!((group.bucket_distribution().get(1) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct GroupPriors {
    priors: Vec<Dist>,
    counts: Vec<u32>,
}

impl GroupPriors {
    /// Build from explicit priors and the actual sensitive codes of the
    /// group members (the codes are collapsed into the multiset — their
    /// association with particular tuples is exactly what the adversary does
    /// *not* know).
    pub fn new(priors: Vec<Dist>, sensitive_codes: &[u32]) -> Self {
        assert!(!priors.is_empty(), "group must be non-empty");
        assert_eq!(
            priors.len(),
            sensitive_codes.len(),
            "one sensitive code per tuple"
        );
        let m = priors[0].len();
        assert!(
            priors.iter().all(|p| p.len() == m),
            "all priors share the sensitive domain"
        );
        let mut counts = vec![0u32; m];
        for &s in sensitive_codes {
            assert!((s as usize) < m, "sensitive code out of domain");
            counts[s as usize] += 1;
        }
        GroupPriors { priors, counts }
    }

    /// Build from explicit priors and a precomputed multiset histogram.
    pub fn from_counts(priors: Vec<Dist>, counts: Vec<u32>) -> Self {
        assert!(!priors.is_empty(), "group must be non-empty");
        let m = priors[0].len();
        assert_eq!(counts.len(), m, "counts dimension mismatch");
        let k: u32 = counts.iter().sum();
        assert_eq!(k as usize, priors.len(), "multiset size = group size");
        GroupPriors { priors, counts }
    }

    /// Build the adversary's view of rows `rows` of `table`, with
    /// `prior_of(qi)` supplying her prior for each QI combination.
    pub fn from_table_rows<F>(table: &Table, rows: &[usize], mut prior_of: F) -> Self
    where
        F: FnMut(&[u32]) -> Dist,
    {
        assert!(!rows.is_empty(), "group must be non-empty");
        let mut qi = Vec::with_capacity(table.qi_count());
        let priors: Vec<Dist> = rows
            .iter()
            .map(|&r| {
                table.qi_into(r, &mut qi);
                prior_of(&qi)
            })
            .collect();
        let codes: Vec<u32> = rows.iter().map(|&r| table.sensitive_value(r)).collect();
        GroupPriors::new(priors, &codes)
    }

    /// Group size `k`.
    pub fn len(&self) -> usize {
        self.priors.len()
    }

    /// True when the group is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.priors.is_empty()
    }

    /// Sensitive domain size `m`.
    pub fn domain_size(&self) -> usize {
        self.counts.len()
    }

    /// Prior of tuple `j`.
    pub fn prior(&self, j: usize) -> &Dist {
        &self.priors[j]
    }

    /// All priors in tuple order.
    pub fn priors(&self) -> &[Dist] {
        &self.priors
    }

    /// The multiset histogram `n_s`.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The empirical (bucket) distribution `n_s / k` — what an adversary
    /// with no background knowledge concludes for every tuple.
    pub fn bucket_distribution(&self) -> Dist {
        Dist::from_counts(&self.counts).expect("group is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    fn d(v: &[f64]) -> Dist {
        Dist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn constructor_builds_multiset() {
        let g = GroupPriors::new(
            vec![d(&[0.5, 0.5]), d(&[0.9, 0.1]), d(&[0.2, 0.8])],
            &[1, 1, 0],
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.counts(), &[1, 2]);
        assert_eq!(g.domain_size(), 2);
        let b = g.bucket_distribution();
        assert!((b.get(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_table_rows_uses_prior_fn() {
        let t = toy::hospital_table();
        let g = GroupPriors::from_table_rows(&t, &[0, 1, 2], |_qi| Dist::uniform(4));
        assert_eq!(g.len(), 3);
        // Rows 0..2 carry Emphysema, Cancer, Flu.
        assert_eq!(g.counts(), &[1, 1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "group must be non-empty")]
    fn empty_group_rejected() {
        let _ = GroupPriors::new(vec![], &[]);
    }

    #[test]
    #[should_panic(expected = "one sensitive code per tuple")]
    fn mismatched_codes_rejected() {
        let _ = GroupPriors::new(vec![d(&[1.0, 0.0])], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "sensitive code out of domain")]
    fn out_of_domain_code_rejected() {
        let _ = GroupPriors::new(vec![d(&[1.0, 0.0])], &[2]);
    }

    #[test]
    #[should_panic(expected = "multiset size")]
    fn from_counts_validates_size() {
        let _ = GroupPriors::from_counts(vec![d(&[1.0, 0.0])], vec![1, 1]);
    }
}
