//! Accuracy evaluation of the Ω-estimate (§V.B, Fig. 2).
//!
//! For a group of `N` tuples with prior `Ppri`, exact posterior `Pexa` and
//! Ω-estimate `Pome`, the **average distance error** is
//!
//! ```text
//! ρ = (1/N) · Σ_j | D[Pexa_j, Ppri_j] − D[Pome_j, Ppri_j] |
//! ```
//!
//! i.e. how much the approximation distorts each tuple's *disclosure risk*
//! as measured by the belief distance `D`.

use bgkanon_stats::measure::BeliefDistance;

use crate::exact::exact_posteriors;
use crate::group::GroupPriors;
use crate::omega::omega_posteriors;

/// Average distance error ρ of the Ω-estimate on one group.
pub fn average_distance_error(group: &GroupPriors, measure: &dyn BeliefDistance) -> f64 {
    let exact = exact_posteriors(group);
    let omega = omega_posteriors(group);
    let n = group.len() as f64;
    exact
        .iter()
        .zip(&omega)
        .enumerate()
        .map(|(j, (e, o))| {
            let prior = group.prior(j);
            (measure.distance(prior, e) - measure.distance(prior, o)).abs()
        })
        .sum::<f64>()
        / n
}

/// Maximum per-tuple distance error on one group (a stricter diagnostic than
/// the paper's average).
pub fn max_distance_error(group: &GroupPriors, measure: &dyn BeliefDistance) -> f64 {
    let exact = exact_posteriors(group);
    let omega = omega_posteriors(group);
    exact
        .iter()
        .zip(&omega)
        .enumerate()
        .map(|(j, (e, o))| {
            let prior = group.prior(j);
            (measure.distance(prior, e) - measure.distance(prior, o)).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_stats::measure::JsDivergence;
    use bgkanon_stats::Dist;

    fn d(v: &[f64]) -> Dist {
        Dist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn error_is_zero_when_omega_is_exact() {
        let priors = vec![Dist::uniform(3); 4];
        let group = GroupPriors::new(priors, &[0, 1, 2, 2]);
        assert!(average_distance_error(&group, &JsDivergence).abs() < 1e-12);
        assert!(max_distance_error(&group, &JsDivergence).abs() < 1e-12);
    }

    #[test]
    fn error_positive_on_table_iii() {
        let (priors, codes) = bgkanon_data::toy::hiv_example_priors_zero();
        let priors: Vec<Dist> = priors.into_iter().map(|p| Dist::new(p).unwrap()).collect();
        let group = GroupPriors::new(priors, &codes);
        let rho = average_distance_error(&group, &JsDivergence);
        assert!(rho > 0.01, "Table III is the canonical inexact case: {rho}");
        assert!(max_distance_error(&group, &JsDivergence) >= rho);
    }

    #[test]
    fn error_bounded_on_moderate_groups() {
        let priors = vec![
            d(&[0.6, 0.3, 0.1]),
            d(&[0.2, 0.7, 0.1]),
            d(&[0.1, 0.2, 0.7]),
            d(&[0.34, 0.33, 0.33]),
            d(&[0.5, 0.25, 0.25]),
        ];
        let group = GroupPriors::new(priors, &[0, 1, 2, 0, 1]);
        let rho = average_distance_error(&group, &JsDivergence);
        // Fig. 2's headline: within 0.1 of exact inference.
        assert!(rho < 0.1, "rho = {rho}");
    }
}
