//! Exact Bayesian posterior inference (§III.C, Eq. 3–4).
//!
//! For tuple `t_j` and sensitive value `s_i` present in the group multiset,
//!
//! ```text
//! P*(s_i | t_j) ∝ P(s_i | t_j) · P(S \ {s_i} | E \ {t_j})
//! ```
//!
//! where the likelihood `P(·|·)` sums the prior products over every
//! *distinct* assignment of the remaining multiset to the remaining tuples.
//! (The paper's Eq. 3 carries an extra `n_i` factor because it counts
//! assignments with the `n_i` identical copies of `s_i` distinguished; both
//! conventions normalize to the same posterior — a property the tests
//! verify.) Normalizing over `i` for fixed `j` yields the exact posterior.
//!
//! Likelihoods are computed by the multiplicity DP in
//! [`bgkanon_stats::permanent`], so the cost is
//! `O(k · q · Π (n_i + 1))` per excluded tuple — practical for the group
//! sizes that generalization and bucketization produce (the Fig. 2 accuracy
//! experiment uses `N ≤ 15`).

use bgkanon_stats::permanent::{likelihood_dp, present_values, MAX_EXACT_GROUP};
use bgkanon_stats::Dist;

use crate::group::GroupPriors;

/// Exact posterior distributions for every tuple in the group.
///
/// Returns one distribution per tuple over the full sensitive domain; values
/// absent from the group multiset have posterior probability 0.
///
/// # Panics
///
/// Panics if the group exceeds [`MAX_EXACT_GROUP`] (the exact computation is
/// #P-hard; use the Ω-estimate for larger groups), or if the priors exclude
/// every consistent assignment (likelihood 0 — impossible when the priors
/// were estimated from data containing the group itself).
pub fn exact_posteriors(group: &GroupPriors) -> Vec<Dist> {
    let k = group.len();
    assert!(
        k <= MAX_EXACT_GROUP,
        "group of size {k} exceeds MAX_EXACT_GROUP = {MAX_EXACT_GROUP}; use omega_posteriors"
    );
    let m = group.domain_size();
    let counts = group.counts();
    let values = present_values(counts);

    let total = likelihood_dp(group.priors(), counts);
    assert!(
        total > 0.0,
        "priors assign zero likelihood to the observed multiset"
    );

    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        // Priors of E \ {t_j}.
        let rest: Vec<Dist> = group
            .priors()
            .iter()
            .enumerate()
            .filter(|&(j2, _)| j2 != j)
            .map(|(_, p)| p.clone())
            .collect();
        let mut post = vec![0.0f64; m];
        let mut norm = 0.0f64;
        for &v in &values {
            let p_prior = group.prior(j).get(v);
            if p_prior == 0.0 {
                continue;
            }
            let mut reduced = counts.to_vec();
            reduced[v] -= 1;
            let rest_likelihood = if rest.is_empty() {
                1.0
            } else {
                likelihood_dp(&rest, &reduced)
            };
            let w = p_prior * rest_likelihood;
            post[v] = w;
            norm += w;
        }
        assert!(
            norm > 0.0,
            "tuple {j} has zero posterior mass: priors inconsistent with multiset"
        );
        for x in post.iter_mut() {
            *x /= norm;
        }
        out.push(Dist::new(post).expect("normalized posterior"));
    }
    out
}

/// The likelihood `P(S|E)` of the whole group (distinct-assignment
/// convention) — exposed for tests and diagnostics.
pub fn group_likelihood(group: &GroupPriors) -> f64 {
    likelihood_dp(group.priors(), group.counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    fn d(v: &[f64]) -> Dist {
        Dist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn paper_hiv_example_posterior_is_080() {
        // §III.B: the adversary's belief that t3 has HIV rises from 0.3 to
        // 0.8 (more precisely 0.27075/0.33725 ≈ 0.80282).
        let (priors, codes) = toy::hiv_example_priors();
        let priors: Vec<Dist> = priors.into_iter().map(|p| Dist::new(p).unwrap()).collect();
        let group = GroupPriors::new(priors, &codes);
        let posts = exact_posteriors(&group);
        let p_t3_hiv = posts[2].get(0);
        let expect = 0.27075 / 0.33725;
        assert!(
            (p_t3_hiv - expect).abs() < 1e-10,
            "got {p_t3_hiv}, expect {expect}"
        );
        // And the likelihood matches the worked value.
        assert!((group_likelihood(&group) - 0.33725).abs() < 1e-12);
    }

    #[test]
    fn table_iii_variant_posterior_is_certain() {
        // When t1, t2 cannot take HIV, exact inference concludes t3 has HIV
        // with probability 1 (the Ω-estimate gets 0.66 — see omega.rs).
        let (priors, codes) = toy::hiv_example_priors_zero();
        let priors: Vec<Dist> = priors.into_iter().map(|p| Dist::new(p).unwrap()).collect();
        let group = GroupPriors::new(priors, &codes);
        let posts = exact_posteriors(&group);
        assert!((posts[2].get(0) - 1.0).abs() < 1e-12);
        assert!(posts[0].get(0).abs() < 1e-12);
        assert!(posts[1].get(0).abs() < 1e-12);
    }

    #[test]
    fn uniform_priors_give_bucket_distribution() {
        // With equal priors every assignment is equally likely, so each
        // tuple's posterior is n_s / k — the random-world baseline.
        let priors = vec![Dist::uniform(3); 4];
        let group = GroupPriors::new(priors, &[0, 0, 1, 2]);
        let posts = exact_posteriors(&group);
        let bucket = group.bucket_distribution();
        for p in &posts {
            assert!(p.max_abs_diff(&bucket) < 1e-12);
        }
    }

    #[test]
    fn posteriors_are_valid_distributions() {
        let priors = vec![
            d(&[0.7, 0.2, 0.1]),
            d(&[0.1, 0.8, 0.1]),
            d(&[0.3, 0.3, 0.4]),
            d(&[0.25, 0.5, 0.25]),
        ];
        let group = GroupPriors::new(priors, &[0, 1, 1, 2]);
        for p in exact_posteriors(&group) {
            let s: f64 = p.as_slice().iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.as_slice().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn column_sums_preserve_multiplicities() {
        // Σ_j P*(s_i|t_j) = n_i: exactly n_i tuples carry value s_i, and the
        // posterior is the marginal of a distribution over assignments.
        let priors = vec![
            d(&[0.6, 0.3, 0.1]),
            d(&[0.2, 0.7, 0.1]),
            d(&[0.1, 0.1, 0.8]),
            d(&[0.4, 0.4, 0.2]),
            d(&[0.3, 0.45, 0.25]),
        ];
        let codes = [0u32, 1, 1, 2, 0];
        let group = GroupPriors::new(priors, &codes);
        let posts = exact_posteriors(&group);
        let counts = group.counts();
        for (s, &n) in counts.iter().enumerate() {
            let col: f64 = posts.iter().map(|p| p.get(s)).sum();
            assert!(
                (col - f64::from(n)).abs() < 1e-9,
                "column {s}: {col} vs {n}"
            );
        }
    }

    #[test]
    fn singleton_group_posterior_is_point_mass() {
        let group = GroupPriors::new(vec![d(&[0.3, 0.7])], &[0]);
        let posts = exact_posteriors(&group);
        assert_eq!(posts[0].as_slice(), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "MAX_EXACT_GROUP")]
    fn oversized_group_rejected() {
        let priors = vec![Dist::uniform(2); 21];
        let codes = vec![0u32; 21];
        let group = GroupPriors::new(priors, &codes);
        let _ = exact_posteriors(&group);
    }

    #[test]
    #[should_panic(expected = "zero likelihood")]
    fn inconsistent_priors_detected() {
        // Both tuples are certain to be value 0, but the multiset is {0, 1}.
        let group = GroupPriors::new(vec![d(&[1.0, 0.0]), d(&[1.0, 0.0])], &[0, 1]);
        let _ = exact_posteriors(&group);
    }
}
