//! `analyze` — the repo-invariant gate CLI.
//!
//! ```text
//! cargo run -p bgkanon-analyze                    # gate against baseline
//! cargo run -p bgkanon-analyze -- --json          # machine-readable report
//! cargo run -p bgkanon-analyze -- --locks         # R1 lock-site inventory
//! cargo run -p bgkanon-analyze -- --explain R3    # rule rationale
//! cargo run -p bgkanon-analyze -- --update-baseline
//! ```
//!
//! Exit codes: 0 = tree matches the baseline, 1 = gate failure (new or
//! stale findings), 2 = usage / IO error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use bgkanon_analyze::json::Json;
use bgkanon_analyze::{analyze_workspace, explain, Baseline, Diff};

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    locks: bool,
    update: bool,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "usage: analyze [--root DIR] [--baseline PATH] [--json] [--locks] \
     [--update-baseline] [--explain RULE]\n\
     \n\
     Walks crates/*/src/**.rs and enforces the six repo invariants \
     (R1 lock discipline, R2 pool usage, R3 determinism, R4 cache growth, \
     R5 bit-identity pairing, R6 panic audit), diffing findings against \
     the committed baseline: new findings fail, fixed findings must be \
     removed from the baseline."
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        locks: false,
        update: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--json" => opts.json = true,
            "--locks" => opts.locks = true,
            "--update-baseline" => opts.update = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule (R1..R6)")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // When run via `cargo run -p bgkanon-analyze` the cwd is the workspace
    // root; fall back to CARGO_MANIFEST_DIR/../.. so the bin also works
    // from inside a crate directory.
    if !opts.root.join("crates").is_dir() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("..").join("..");
            if candidate.join("crates").is_dir() {
                opts.root = candidate;
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("analyze: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &opts.explain {
        let rule = rule.to_uppercase();
        return match explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("analyze: no such rule `{rule}` (R1..R6)");
                ExitCode::from(2)
            }
        };
    }

    let analysis = match analyze_workspace(&opts.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: failed to walk {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if opts.locks {
        println!(
            "R1 classified lock sites ({} across {} files scanned):",
            analysis.lock_sites.len(),
            analysis.files.len()
        );
        for site in &analysis.lock_sites {
            println!(
                "  {}:{}  fn {:<28} {:<14} rank {}  via `{}` ({})",
                site.file,
                site.line,
                site.function,
                site.class,
                site.rank,
                site.receiver,
                if site.bound {
                    "let-bound guard"
                } else {
                    "statement temporary"
                },
            );
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("crates/analyze/baseline.json"));

    if opts.update {
        let doc = Baseline::render(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!("analyze: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyze: baseline updated — {} findings recorded in {}",
            analysis.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = Diff::compute(&analysis.findings, &baseline);

    if opts.json {
        let findings: Vec<Json> = analysis
            .findings
            .iter()
            .map(|f| {
                let mut m = BTreeMap::new();
                m.insert("rule".into(), Json::Str(f.rule.into()));
                m.insert("key".into(), Json::Str(f.key.clone()));
                m.insert("file".into(), Json::Str(f.file.clone()));
                m.insert("line".into(), Json::Num(f.line as f64));
                m.insert("message".into(), Json::Str(f.message.clone()));
                m.insert(
                    "baselined".into(),
                    Json::Bool(baseline.entries.contains_key(&f.key)),
                );
                Json::Obj(m)
            })
            .collect();
        let stale: Vec<Json> = diff
            .stale
            .iter()
            .map(|(key, line, message)| {
                let mut m = BTreeMap::new();
                m.insert("key".into(), Json::Str(key.clone()));
                m.insert("line".into(), Json::Num(*line as f64));
                m.insert("message".into(), Json::Str(message.clone()));
                Json::Obj(m)
            })
            .collect();
        let mut doc = BTreeMap::new();
        doc.insert(
            "files_scanned".into(),
            Json::Num(analysis.files.len() as f64),
        );
        doc.insert("findings".into(), Json::Arr(findings));
        doc.insert("stale_baseline".into(), Json::Arr(stale));
        doc.insert("clean".into(), Json::Bool(diff.is_clean()));
        print!("{}", Json::Obj(doc).pretty());
        return if diff.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        *per_rule.entry(f.rule).or_default() += 1;
    }
    let summary: Vec<String> = per_rule
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    println!(
        "analyze: scanned {} files — {} findings ({}), {} baselined",
        analysis.files.len(),
        analysis.findings.len(),
        if summary.is_empty() {
            "none".to_owned()
        } else {
            summary.join(", ")
        },
        baseline.entries.len(),
    );

    if diff.is_clean() {
        println!("analyze: tree matches the committed baseline — gate passes");
        return ExitCode::SUCCESS;
    }
    if !diff.new.is_empty() {
        println!("\nNEW findings (not in baseline — fix or re-baseline deliberately):");
        for f in &diff.new {
            println!("  [{}] {}:{} {}", f.rule, f.file, f.line, f.message);
        }
    }
    if !diff.stale.is_empty() {
        println!("\nSTALE baseline entries (fixed — remove from baseline):");
        for (key, line, message) in &diff.stale {
            println!("  {key} (was line {line}: {message})");
        }
    }
    println!(
        "\nanalyze: gate FAILS — {} new, {} stale; run with --update-baseline \
         after review, or annotate sanctioned sites with `// bgk-allow: Rn reason`",
        diff.new.len(),
        diff.stale.len()
    );
    ExitCode::FAILURE
}
