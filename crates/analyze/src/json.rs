//! Minimal JSON reading/writing for the committed baseline and `--json`
//! output. The workspace vendors no JSON dependency (same policy as
//! `bgkanon-bench::gate`), and the analyzer must not link the crates it
//! inspects, so it carries its own ~150-line recursive-descent subset:
//! objects, arrays, strings with `\"`/`\\`/`\n`/`\t`/`\u` escapes, numbers,
//! booleans, null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use a `BTreeMap` — key order is sorted on
/// write, so serialized baselines are byte-stable across runs (rule R3
/// discipline applies to the analyzer itself).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and a short message.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = utf8_len(c);
                let slice = bytes
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated utf-8 sequence")?;
                out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = r#"{"version": 1, "findings": [{"rule": "R2", "line": 42, "ok": true, "note": null, "msg": "a \"quoted\" path"}]}"#;
        let parsed = parse(text).unwrap();
        let again = parse(&parsed.pretty()).unwrap();
        assert_eq!(parsed, again);
        assert_eq!(parsed.get("version").and_then(Json::as_f64), Some(1.0));
        let findings = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("R2"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn unicode_survives() {
        let parsed = parse("{\"k\": \"P̂pri Ω\"}").unwrap();
        assert_eq!(parsed.get("k").and_then(Json::as_str), Some("P̂pri Ω"));
    }
}
