//! A minimal Rust lexer: just enough fidelity for invariant scanning.
//!
//! The rule engine needs a token stream where **comments and string
//! contents can never masquerade as code** — `"std::thread::spawn"` inside
//! a doc comment or a test fixture string must not trip rule R2. The lexer
//! therefore handles the full comment/literal surface of the language
//! (nested block comments, raw strings with arbitrary `#` fences, byte and
//! char literals, lifetimes) while deliberately not distinguishing keywords
//! from identifiers — the rules match on identifier text directly.
//!
//! Suppression comments are the one place comment *content* matters:
//! `// bgk-allow: R3 <reason>` records an allowance for the named rules on
//! the comment's line and the line after it (so the annotation can sit
//! above the flagged statement).

use std::collections::{BTreeMap, BTreeSet};

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `spawn`, `HashMap`, …).
    Ident,
    /// Any single punctuation character (`.`, `(`, `{`, `;`, …).
    Punct,
    /// String/char/byte/numeric literal (content discarded beyond text).
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's text (for `Punct`, a single character).
    pub text: String,
    /// Classification used by the rule engine.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A fully lexed source file: the token stream plus the per-line rule
/// allowances harvested from `bgk-allow` comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Line → rules allowed on that line (each `bgk-allow` comment covers
    /// its own line and the next, so an annotation can precede the code).
    pub allows: BTreeMap<u32, BTreeSet<String>>,
}

impl Lexed {
    /// Is `rule` suppressed on `line` by a `bgk-allow` comment?
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .map(|rules| rules.contains(rule))
            .unwrap_or(false)
    }
}

/// Lex `source` into tokens and allow-directives.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let push = |text: String, kind: TokenKind, line: u32, out: &mut Lexed| {
        out.tokens.push(Token { text, kind, line });
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc `///` / `//!`): scan for bgk-allow.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            record_allow(&text, line, &mut out.allows);
            continue;
        }
        // Block comment, nested per the language.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# / br##"..."## (any fence width).
        if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
            let start_line = line;
            // Skip the b/r prefix characters.
            while i < n && (bytes[i] == 'r' || bytes[i] == 'b') {
                i += 1;
            }
            let mut fence = 0usize;
            while i < n && bytes[i] == '#' {
                fence += 1;
                i += 1;
            }
            debug_assert!(i < n && bytes[i] == '"');
            i += 1; // opening quote
            loop {
                if i >= n {
                    break;
                }
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                    continue;
                }
                if bytes[i] == '"' {
                    let mut closed = true;
                    for k in 0..fence {
                        if i + 1 + k >= n || bytes[i + 1 + k] != '#' {
                            closed = false;
                            break;
                        }
                    }
                    if closed {
                        i += 1 + fence;
                        break;
                    }
                }
                i += 1;
            }
            push(
                String::from("\"raw\""),
                TokenKind::Literal,
                start_line,
                &mut out,
            );
            continue;
        }
        // Ordinary string (or byte string; the b was consumed as an ident
        // only if not directly followed by a quote — handle b"..." here).
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let start_line = line;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            push(
                String::from("\"str\""),
                TokenKind::Literal,
                start_line,
                &mut out,
            );
            continue;
        }
        // Lifetime vs char literal. After a quote: identifier-start not
        // followed by a closing quote → lifetime; anything else → char.
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_')
                && !(i + 2 < n && bytes[i + 2] == '\'');
            if is_lifetime {
                let start = i;
                i += 1;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push(text, TokenKind::Lifetime, line, &mut out);
            } else {
                i += 1; // opening quote
                while i < n {
                    match bytes[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            // Unterminated char (shouldn't happen in valid
                            // Rust); bail to keep lexing.
                            break;
                        }
                        _ => i += 1,
                    }
                }
                push(String::from("'c'"), TokenKind::Literal, line, &mut out);
            }
            continue;
        }
        // Number literal (decimal/hex/float/suffixed); stop before `..`.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let d = bytes[i];
                if d == '.' {
                    // `0..n` is a range, not a float.
                    if i + 1 < n && bytes[i + 1] == '.' {
                        break;
                    }
                    if i + 1 < n && !bytes[i + 1].is_ascii_digit() {
                        break;
                    }
                    i += 1;
                } else if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if (d == '+' || d == '-')
                    && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')
                    && bytes[start..i]
                        .iter()
                        .any(|&x| x == '.' || x.is_ascii_digit())
                {
                    i += 1; // exponent sign
                } else {
                    break;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            push(text, TokenKind::Literal, line, &mut out);
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            push(text, TokenKind::Ident, line, &mut out);
            continue;
        }
        // Everything else: single-character punctuation.
        push(c.to_string(), TokenKind::Punct, line, &mut out);
        i += 1;
    }
    out
}

/// Does a raw-string literal start at `i` (`r"`, `r#`, `br"`, `rb#`…)?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    // Allow the br / rb prefix orderings.
    while j < bytes.len() && (bytes[j] == 'r' || bytes[j] == 'b') && j - i < 2 {
        saw_r |= bytes[j] == 'r';
        j += 1;
    }
    if !saw_r {
        return false;
    }
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

/// Parse a `bgk-allow: R3, R6 reason…` directive out of one line comment.
fn record_allow(comment: &str, line: u32, allows: &mut BTreeMap<u32, BTreeSet<String>>) {
    let Some(pos) = comment.find("bgk-allow:") else {
        return;
    };
    let rest = &comment[pos + "bgk-allow:".len()..];
    let mut rules = BTreeSet::new();
    for word in rest.split([',', ' ', '\t']) {
        let word = word.trim();
        if word.len() == 2 && word.starts_with('R') && word[1..].chars().all(|c| c.is_ascii_digit())
        {
            rules.insert(word.to_owned());
        } else if !word.is_empty() && !rules.is_empty() {
            // First non-rule word starts the free-form reason.
            break;
        }
    }
    if rules.is_empty() {
        return;
    }
    // The allowance covers the comment's own line and the next line, so the
    // annotation can trail the flagged code or sit on its own line above.
    for l in [line, line + 1] {
        allows.entry(l).or_default().extend(rules.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_hide_code() {
        let lexed = lex("// std::thread::spawn in a comment\n\
             /* and /* nested */ here */\n\
             let s = \"std::thread::spawn\";\n\
             let r = r#\"thread::scope\"#;\n\
             real_ident();\n");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("spawn")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("scope")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("real_ident")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn allow_directive_covers_two_lines() {
        let lexed = lex("// bgk-allow: R3 sorted two lines down\nx.iter();\ny.iter();\n");
        assert!(lexed.is_allowed("R3", 1));
        assert!(lexed.is_allowed("R3", 2));
        assert!(!lexed.is_allowed("R3", 3));
        assert!(!lexed.is_allowed("R6", 2));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lexed = lex("for i in 0..10 { a[i] = 1.5e-3; }");
        assert!(lexed.tokens.iter().any(|t| t.text == "0"));
        assert!(lexed.tokens.iter().any(|t| t.text == "10"));
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5e-3"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let lexed = lex("/* a\nb\nc */\nfn f() {}\n");
        let f = lexed.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }
}
