//! `bgkanon-analyze` — the repo-invariant static-analysis gate.
//!
//! Walks every `crates/*/src/**.rs` file in the workspace with a lightweight
//! comment/string-aware Rust lexer and a brace-scope tracker, and enforces
//! six rules (see [`rules::explain`] or `cargo run -p bgkanon-analyze --
//! --explain R1`):
//!
//! - **R1 lock discipline** — classified `SessionHub`/`SharedAuditSession`
//!   guards acquire in the sanctioned registration → shard → tenant-writer →
//!   wal → published → caches → intern-table order, and no expensive engine call runs
//!   under a held guard.
//! - **R2 pool usage** — `std::thread::{spawn,scope}` only inside
//!   `crates/data/src/exec.rs`; everything else submits to `shared_pool()`.
//! - **R3 determinism** — no hash-ordered iteration or wall-clock reads in
//!   library crates (annotate sanctioned sites `// bgk-allow: R3 …`).
//! - **R4 cache growth** — inserts into `*cache*`/`*memo*` fields require an
//!   accounting/eviction hook on the owning type.
//! - **R5 bit-identity pairing** — every public `*_with(…, Parallelism…)`
//!   entry point keeps a serial twin and appears in the `tests/tests/`
//!   bit-identity suites.
//! - **R6 panic audit** — `.unwrap()`/`.expect(`/`panic!` inventory may only
//!   ratchet down against the committed baseline.
//!
//! Findings diff against `crates/analyze/baseline.json` the same way the
//! bench perfgate diffs against its floor: **new findings fail the gate, and
//! fixed findings must be removed from the baseline**.

pub mod json;
pub mod lexer;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use json::Json;
pub use rules::{analyze_file, explain, FileAnalysis, Finding, LockSite};

/// Everything the gate learned about one workspace tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings across all files, sorted by key.
    pub findings: Vec<Finding>,
    /// The R1 classified-lock inventory (`--locks`).
    pub lock_sites: Vec<LockSite>,
    /// Files scanned, workspace-relative, sorted.
    pub files: Vec<String>,
}

/// Analyze a workspace rooted at `root`: every `.rs` file under
/// `crates/*/src/`, with `tests/tests/*.rs` read as the R5 suite corpus.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut suite_text = String::new();
    let suites_dir = root.join("tests").join("tests");
    if suites_dir.is_dir() {
        for path in sorted_entries(&suites_dir)? {
            if path.extension().is_some_and(|e| e == "rs") {
                suite_text.push_str(&fs::read_to_string(&path)?);
                suite_text.push('\n');
            }
        }
    }

    let mut analysis = Analysis::default();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_entries(&crates_dir)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path)?;
            let file_analysis = analyze_file(&rel, &source, &suite_text);
            analysis.findings.extend(file_analysis.findings);
            analysis.lock_sites.extend(file_analysis.lock_sites);
            analysis.files.push(rel);
        }
    }
    analysis.findings.sort();
    analysis
        .lock_sites
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(analysis)
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for path in sorted_entries(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The committed debt register: finding keys accepted by a previous
/// `--update-baseline` run, with their last-known lines and messages for
/// human readers.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Key → (line, message) as recorded at baseline time.
    pub entries: BTreeMap<String, (u32, String)>,
}

impl Baseline {
    /// Load a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let version = doc.get("version").and_then(Json::as_f64).unwrap_or(0.0);
        if version != 1.0 {
            return Err(format!(
                "{}: unsupported baseline version {version}",
                path.display()
            ));
        }
        let mut entries = BTreeMap::new();
        for item in doc.get("findings").and_then(Json::as_arr).unwrap_or(&[]) {
            let key = item
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{}: finding without key", path.display()))?;
            let line = item.get("line").and_then(Json::as_f64).unwrap_or(0.0) as u32;
            let message = item
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned();
            entries.insert(key.to_owned(), (line, message));
        }
        Ok(Self { entries })
    }

    /// Serialize findings as a fresh baseline document.
    pub fn render(findings: &[Finding]) -> String {
        let items: Vec<Json> = findings
            .iter()
            .map(|f| {
                let mut m = BTreeMap::new();
                m.insert("rule".into(), Json::Str(f.rule.into()));
                m.insert("key".into(), Json::Str(f.key.clone()));
                m.insert("file".into(), Json::Str(f.file.clone()));
                m.insert("line".into(), Json::Num(f.line as f64));
                m.insert("message".into(), Json::Str(f.message.clone()));
                Json::Obj(m)
            })
            .collect();
        let mut doc = BTreeMap::new();
        doc.insert("version".into(), Json::Num(1.0));
        doc.insert("findings".into(), Json::Arr(items));
        Json::Obj(doc).pretty()
    }
}

/// The gate verdict: findings not in the baseline (fail), and baseline
/// entries no longer found (also fail — the register must ratchet down).
#[derive(Debug)]
pub struct Diff<'a> {
    /// Findings absent from the baseline.
    pub new: Vec<&'a Finding>,
    /// Baseline keys with no current finding, with recorded (line, message).
    pub stale: Vec<(String, u32, String)>,
}

impl<'a> Diff<'a> {
    /// Compare current findings against the committed baseline.
    pub fn compute(findings: &'a [Finding], baseline: &Baseline) -> Self {
        let current: BTreeSet<&str> = findings.iter().map(|f| f.key.as_str()).collect();
        let new = findings
            .iter()
            .filter(|f| !baseline.entries.contains_key(&f.key))
            .collect();
        let stale = baseline
            .entries
            .iter()
            .filter(|(key, _)| !current.contains(key.as_str()))
            .map(|(key, (line, message))| (key.clone(), *line, message.clone()))
            .collect();
        Self { new, stale }
    }

    /// True when the tree matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(key: &str) -> Finding {
        Finding {
            rule: "R6",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            key: key.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let findings = vec![finding("R6|a|f|unwrap:0"), finding("R6|a|f|unwrap:1")];
        let rendered = Baseline::render(&findings);
        let dir = std::env::temp_dir().join("bgkanon-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, &rendered).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);

        // Identical tree: clean.
        let diff = Diff::compute(&findings, &loaded);
        assert!(diff.is_clean());

        // A new finding fails…
        let grown = vec![
            finding("R6|a|f|unwrap:0"),
            finding("R6|a|f|unwrap:1"),
            finding("R6|b|g|panic!:0"),
        ];
        let diff = Diff::compute(&grown, &loaded);
        assert_eq!(diff.new.len(), 1);
        assert!(diff.stale.is_empty());

        // …and so does a fixed-but-not-removed baseline entry.
        let shrunk = vec![finding("R6|a|f|unwrap:0")];
        let diff = Diff::compute(&shrunk, &loaded);
        assert!(diff.new.is_empty());
        assert_eq!(diff.stale.len(), 1);
    }

    #[test]
    fn missing_baseline_is_empty() {
        let loaded = Baseline::load(Path::new("/nonexistent/baseline.json")).unwrap();
        assert!(loaded.entries.is_empty());
        let findings = vec![finding("R6|a|f|unwrap:0")];
        assert!(!Diff::compute(&findings, &loaded).is_clean());
    }
}
