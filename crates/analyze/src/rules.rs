//! The six repo-invariant rules, evaluated over a lexed token stream with a
//! brace-scope tracker. Everything here is heuristic lexical analysis — no
//! type information — tuned to this workspace's idioms; the committed
//! baseline absorbs accepted debt and `// bgk-allow: Rn reason` comments
//! absorb sanctioned sites (see each rule's `explain` text).

use std::collections::BTreeSet;

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// One rule violation (or inventoried debt item, for R6).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// `R1`…`R6`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (informational — not part of the baseline identity).
    pub line: u32,
    /// Stable identity for the baseline diff: `rule|file|context|index`,
    /// deliberately free of line numbers so unrelated edits don't churn
    /// the baseline.
    pub key: String,
    /// Human-readable description.
    pub message: String,
}

/// One classified lock acquisition — the R1 inventory behind `--locks`.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `.lock()`/`.read()`/`.write()` call.
    pub line: u32,
    /// Enclosing function.
    pub function: String,
    /// Lock-class name (`shard`, `tenant-writer`, `published`,
    /// `reader-caches`, `audit-caches`).
    pub class: &'static str,
    /// Rank in the sanctioned acquisition order (ascending only).
    pub rank: u8,
    /// The receiver field the class was derived from.
    pub receiver: String,
    /// `let`-bound guard (held to end of block) vs a temporary dropped at
    /// the end of its statement.
    pub bound: bool,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Rule violations found.
    pub findings: Vec<Finding>,
    /// R1 lock inventory (all classified acquisitions, violating or not).
    pub lock_sites: Vec<LockSite>,
}

/// The sanctioned lock order: a thread may only acquire a classified lock
/// with a **strictly higher rank** than every classified guard it already
/// holds (registration → shard → tenant-writer → wal → published →
/// caches → intern-table), and never two locks of the same class at once.
/// Receiver field name → (class, rank).
pub const LOCK_CLASSES: &[(&str, &str, u8)] = &[
    ("registration", "registration", 1),
    ("tenants", "shard", 2),
    ("writer", "tenant-writer", 3),
    ("wal", "wal", 4),
    ("published", "published", 5),
    ("readers", "reader-caches", 6),
    ("caches", "audit-caches", 6),
    ("memo", "audit-caches", 6),
    ("interned", "intern-table", 7),
];

/// Call-name prefixes considered expensive enough that holding any
/// classified lock across them is a serving-latency bug (rule R1b).
const EXPENSIVE_PREFIXES: &[&str] = &["omega", "estimate", "anonymize", "report"];

/// Map/set methods whose iteration order is the hash order (rule R3).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Type-path tokens the R3 declaration scanner walks through when matching
/// a `name: …HashMap<…>` ascription backwards from the `HashMap` token.
const TYPE_WRAPPERS: &[&str] = &[
    "std",
    "collections",
    "sync",
    "cell",
    "Mutex",
    "RwLock",
    "Arc",
    "Rc",
    "Box",
    "Option",
    "RefCell",
    "OnceLock",
    "mut",
    "dyn",
];

/// Where a file sits in the workspace, deciding which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Library code: `crates/<x>/src/**` excluding `src/bin/**`,
    /// `crates/bench` and `crates/analyze`. R1/R3/R4/R5/R6 apply here.
    pub library: bool,
    /// R2 applies (everything scanned except the pool layer itself).
    pub r2: bool,
}

/// Derive the rule scope from a workspace-relative path.
pub fn scope_of(rel_path: &str) -> FileScope {
    let in_crates = rel_path.starts_with("crates/");
    let is_bin = rel_path.contains("/src/bin/");
    let is_bench = rel_path.starts_with("crates/bench/");
    let is_analyze = rel_path.starts_with("crates/analyze/");
    let is_exec = rel_path == "crates/data/src/exec.rs";
    FileScope {
        library: in_crates && !is_bin && !is_bench && !is_analyze,
        r2: in_crates && !is_analyze && !is_exec,
    }
}

/// Analyze one source file. `suite_text` is the concatenated text of the
/// workspace bit-identity suites (`tests/tests/*.rs`), consulted by R5.
pub fn analyze_file(rel_path: &str, source: &str, suite_text: &str) -> FileAnalysis {
    let scope = scope_of(rel_path);
    let lexed = lex(source);
    let ctx = FileCtx::build(rel_path, &lexed);
    let mut out = FileAnalysis::default();
    if scope.r2 {
        rule_r2(&ctx, &mut out);
    }
    if scope.library {
        rule_r1(&ctx, &mut out);
        rule_r3(&ctx, &mut out);
        rule_r4(&ctx, &mut out);
        rule_r5(&ctx, suite_text, &mut out);
        rule_r6(&ctx, &mut out);
    }
    out.findings.sort();
    out
}

/// Shared per-file token context: brace matching, `#[cfg(test)]` regions,
/// function and struct spans.
struct FileCtx<'a> {
    rel_path: &'a str,
    lexed: &'a Lexed,
    tokens: &'a [Token],
    /// For each token index: true when inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
    /// `(name, first_body_token, last_body_token)` for every `fn` with a
    /// body, in source order (inner fns appear after their enclosing fn).
    fn_spans: Vec<(String, usize, usize)>,
    /// Same for `struct`/`enum` bodies.
    struct_spans: Vec<(String, usize, usize)>,
}

impl<'a> FileCtx<'a> {
    fn build(rel_path: &'a str, lexed: &'a Lexed) -> Self {
        let tokens = &lexed.tokens[..];
        let match_of = brace_matches(tokens);
        let mut in_test = vec![false; tokens.len()];
        // `#[cfg(test)]` followed by any braced item marks the item body
        // (and the attribute tokens themselves) as test code.
        let mut i = 0;
        while i + 6 < tokens.len() {
            if tokens[i].is_punct('#')
                && tokens[i + 1].is_punct('[')
                && tokens[i + 2].is_ident("cfg")
                && tokens[i + 3].is_punct('(')
                && tokens[i + 4].is_ident("test")
                && tokens[i + 5].is_punct(')')
                && tokens[i + 6].is_punct(']')
            {
                let mut j = i + 7;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    let end = match_of[j].unwrap_or(tokens.len() - 1);
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = j;
                }
            }
            i += 1;
        }

        let mut fn_spans = Vec::new();
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("fn") || i + 1 >= tokens.len() {
                continue;
            }
            if tokens[i + 1].kind != TokenKind::Ident {
                continue;
            }
            let name = tokens[i + 1].text.clone();
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                if let Some(end) = match_of[j] {
                    fn_spans.push((name, j, end));
                }
            }
        }

        let mut struct_spans = Vec::new();
        for i in 0..tokens.len() {
            if !(tokens[i].is_ident("struct") || tokens[i].is_ident("enum"))
                || i + 1 >= tokens.len()
                || tokens[i + 1].kind != TokenKind::Ident
            {
                continue;
            }
            let name = tokens[i + 1].text.clone();
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                if let Some(end) = match_of[j] {
                    struct_spans.push((name, j, end));
                }
            }
        }

        FileCtx {
            rel_path,
            lexed,
            tokens,
            in_test,
            fn_spans,
            struct_spans,
        }
    }

    /// Name of the innermost function containing token `idx`.
    fn fn_at(&self, idx: usize) -> &str {
        self.fn_spans
            .iter()
            .rfind(|(_, start, end)| *start <= idx && idx <= *end)
            .map(|(name, _, _)| name.as_str())
            .unwrap_or("<file>")
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.lexed.is_allowed(rule, line)
    }
}

/// For each `{` token, the index of its matching `}`.
fn brace_matches(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
            }
        }
    }
    out
}

fn lock_class(receiver: &str) -> Option<(&'static str, u8)> {
    LOCK_CLASSES
        .iter()
        .find(|(field, _, _)| *field == receiver)
        .map(|(_, class, rank)| (*class, *rank))
}

/// R1 — lock discipline. Within each non-test library function, classified
/// guards (`SessionHub` / `SharedAuditSession` lock classes) must be
/// acquired in strictly ascending rank order, never twice per class, and
/// no expensive engine call (`omega_*`/`estimate_*`/`anonymize_*`/
/// `report_*`) may run while any classified guard is held.
fn rule_r1(ctx: &FileCtx<'_>, out: &mut FileAnalysis) {
    struct LiveGuard {
        name: Option<String>,
        class: &'static str,
        rank: u8,
        /// Depth the guard's block lives at; `None` = statement-temporary.
        depth: Option<i32>,
    }

    for (fn_name, body_start, body_end) in &ctx.fn_spans {
        if ctx.in_test[*body_start] {
            continue;
        }
        // Skip spans that are nested inside an earlier span we already
        // walked (inner `fn`s are rare and would double-report).
        if ctx
            .fn_spans
            .iter()
            .any(|(_, s, e)| s < body_start && body_end <= e)
        {
            continue;
        }
        let t = ctx.tokens;
        let mut depth: i32 = 0;
        let mut live: Vec<LiveGuard> = Vec::new();
        let mut counts: std::collections::BTreeMap<String, u32> = Default::default();
        let mut i = *body_start;
        while i <= *body_end {
            let tok = &t[i];
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth -= 1;
                live.retain(|g| g.depth.is_none() || g.depth.unwrap() <= depth);
            } else if tok.is_punct(';') {
                live.retain(|g| g.depth.is_some());
            } else if tok.is_ident("drop")
                && i + 2 <= *body_end
                && t[i + 1].is_punct('(')
                && t[i + 2].kind == TokenKind::Ident
            {
                let victim = &t[i + 2].text;
                live.retain(|g| g.name.as_deref() != Some(victim.as_str()));
            } else if tok.kind == TokenKind::Ident
                && (tok.text == "lock" || tok.text == "read" || tok.text == "write")
                && i > 0
                && t[i - 1].is_punct('.')
                && i + 2 <= *body_end
                && t[i + 1].is_punct('(')
                && t[i + 2].is_punct(')')
            {
                let receiver =
                    (i >= 2 && t[i - 2].kind == TokenKind::Ident).then(|| t[i - 2].text.clone());
                if let Some((class, rank)) = receiver.as_deref().and_then(lock_class) {
                    let receiver = receiver.unwrap();
                    // Order check against everything currently held.
                    for g in &live {
                        let violation = if g.class == class {
                            Some(format!(
                                "acquires `{class}` while already holding a `{class}` guard \
                                 (self-deadlock on a Mutex class)"
                            ))
                        } else if g.rank >= rank {
                            Some(format!(
                                "acquires `{class}` (rank {rank}) while holding `{held}` \
                                 (rank {held_rank}) — sanctioned order is \
                                 registration → shard → tenant-writer → wal → \
                                 published → caches → intern-table",
                                held = g.class,
                                held_rank = g.rank,
                            ))
                        } else {
                            None
                        };
                        if let Some(message) = violation {
                            if !ctx.allowed("R1", tok.line) {
                                let n = counts.entry(format!("order:{class}")).or_default();
                                out.findings.push(Finding {
                                    rule: "R1",
                                    file: ctx.rel_path.to_owned(),
                                    line: tok.line,
                                    key: format!(
                                        "R1|{}|{}|order:{}:{}",
                                        ctx.rel_path, fn_name, class, n
                                    ),
                                    message: format!("fn {fn_name}: {message}"),
                                });
                                *n += 1;
                            }
                        }
                    }
                    // Guard bookkeeping: let-bound guards survive to the
                    // end of their block, temporaries to the statement. A
                    // lock chained past `unwrap`/`expect` into further
                    // methods (`….lock().expect(…).get(…)`) is consumed
                    // within its statement — the binding holds the chain's
                    // result, not the guard.
                    let binding = if chain_consumes_guard(t, i + 2, *body_end) {
                        None
                    } else {
                        let_binding_name(t, *body_start, i)
                    };
                    out.lock_sites.push(LockSite {
                        file: ctx.rel_path.to_owned(),
                        line: tok.line,
                        function: fn_name.clone(),
                        class,
                        rank,
                        receiver,
                        bound: binding.is_some(),
                    });
                    live.push(LiveGuard {
                        depth: binding.is_some().then_some(depth),
                        name: binding,
                        class,
                        rank,
                    });
                }
            } else if tok.kind == TokenKind::Ident
                && !live.is_empty()
                && i < *body_end
                && t[i + 1].is_punct('(')
                && EXPENSIVE_PREFIXES
                    .iter()
                    .any(|p| tok.text == *p || tok.text.starts_with(&format!("{p}_")))
                && !ctx.allowed("R1", tok.line)
            {
                let held = live.last().map(|g| g.class).unwrap_or("?");
                let n = counts.entry(format!("exp:{}", tok.text)).or_default();
                out.findings.push(Finding {
                    rule: "R1",
                    file: ctx.rel_path.to_owned(),
                    line: tok.line,
                    key: format!(
                        "R1|{}|{}|expensive:{}:{}",
                        ctx.rel_path, fn_name, tok.text, n
                    ),
                    message: format!(
                        "fn {fn_name}: expensive call `{}(…)` while a `{held}` guard is \
                         held — move the computation outside the lock",
                        tok.text
                    ),
                });
                *n += 1;
            }
            i += 1;
        }
    }
}

/// Starting at the `)` closing a `.lock()`-style call, skip any
/// `.unwrap()` / `.expect(…)` links and report whether the chain continues
/// with more method calls (which deref the guard and drop it at the end of
/// the statement).
fn chain_consumes_guard(t: &[Token], close: usize, hi: usize) -> bool {
    let mut j = close;
    loop {
        if j + 3 > hi || !t[j + 1].is_punct('.') {
            return false;
        }
        let name = &t[j + 2];
        if name.kind != TokenKind::Ident
            || !(name.text == "unwrap" || name.text == "expect")
            || !t[j + 3].is_punct('(')
        {
            // `.something_else(` right after the guard: consumed in-chain.
            return true;
        }
        // Skip to the matching `)` of the unwrap/expect call.
        let mut depth = 0i32;
        let mut k = j + 3;
        while k <= hi {
            if t[k].is_punct('(') {
                depth += 1;
            } else if t[k].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        if k > hi {
            return false;
        }
        j = k;
    }
}

/// If the statement containing token `at` is a simple `let [mut] name = …`
/// binding, return the bound name.
fn let_binding_name(t: &[Token], lo: usize, at: usize) -> Option<String> {
    let mut j = at;
    while j > lo {
        let tok = &t[j - 1];
        if tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !t[j].is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if k < t.len() && t[k].is_ident("mut") {
        k += 1;
    }
    (t[k].kind == TokenKind::Ident && k + 1 < t.len() && !t[k + 1].is_punct('('))
        .then(|| t[k].text.clone())
}

/// R2 — pool usage. `std::thread::spawn` / `std::thread::scope` are
/// forbidden everywhere but the pool layer itself
/// (`crates/data/src/exec.rs`): engines and tests submit to
/// `bgkanon_data::shared_pool()` instead, so a serving process never pays
/// per-call thread spawn/join and never oversubscribes the machine.
fn rule_r2(ctx: &FileCtx<'_>, out: &mut FileAnalysis) {
    let t = ctx.tokens;
    let mut counts: std::collections::BTreeMap<String, u32> = Default::default();
    for i in 3..t.len() {
        let tok = &t[i];
        if tok.kind == TokenKind::Ident
            && (tok.text == "spawn" || tok.text == "scope")
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t[i - 3].is_ident("thread")
            && !ctx.allowed("R2", tok.line)
        {
            let fn_name = ctx.fn_at(i);
            let n = counts.entry(format!("{fn_name}|{}", tok.text)).or_default();
            out.findings.push(Finding {
                rule: "R2",
                file: ctx.rel_path.to_owned(),
                line: tok.line,
                key: format!("R2|{}|{}|{}:{}", ctx.rel_path, fn_name, tok.text, n),
                message: format!(
                    "fn {fn_name}: `std::thread::{}` outside the pool layer — submit \
                     jobs to `bgkanon_data::shared_pool()` instead",
                    tok.text
                ),
            });
            *n += 1;
        }
    }
}

/// R3 — determinism. (a) Iterating a `HashMap`/`HashSet` in library code
/// makes output depend on the hash seed; use `BTreeMap`/`BTreeSet` or sort
/// and annotate the site `// bgk-allow: R3 <how it is sorted>`.
/// (b) `Instant::now` / `SystemTime::now` outside `crates/bench` makes
/// library behavior time-dependent; profile-only timers must be annotated.
fn rule_r3(ctx: &FileCtx<'_>, out: &mut FileAnalysis) {
    let t = ctx.tokens;
    // Pass 1: collect identifiers declared with a hash-ordered type.
    let mut hashed: BTreeSet<String> = BTreeSet::new();
    for i in 0..t.len() {
        if !(t[i].is_ident("HashMap") || t[i].is_ident("HashSet")) {
            continue;
        }
        let mut j = i;
        let mut saw_eq = false;
        while j > 0 {
            let prev = &t[j - 1];
            if prev.is_punct(':') && j >= 2 && t[j - 2].is_punct(':') {
                j -= 2; // path separator `::`
            } else if prev.is_punct(':') {
                // Type ascription: the token before names the binding.
                if j >= 2 && t[j - 2].kind == TokenKind::Ident {
                    hashed.insert(t[j - 2].text.clone());
                }
                break;
            } else if prev.is_punct('=') {
                saw_eq = true;
                j -= 1;
            } else if prev.kind == TokenKind::Ident && saw_eq {
                // `let [mut] name = HashMap::new()` (no ascription).
                let lead = j >= 2 && (t[j - 2].is_ident("let") || t[j - 2].is_ident("mut"));
                if lead {
                    hashed.insert(prev.text.clone());
                }
                break;
            } else if prev.kind == TokenKind::Ident && TYPE_WRAPPERS.contains(&prev.text.as_str())
                || prev.is_punct('<')
                || prev.is_punct('&')
                || prev.is_punct('(')
                || prev.kind == TokenKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
    }

    let mut counts: std::collections::BTreeMap<String, u32> = Default::default();
    let report = |rule_key: String,
                  line: u32,
                  fn_name: &str,
                  message: String,
                  out: &mut FileAnalysis,
                  counts: &mut std::collections::BTreeMap<String, u32>| {
        let n = counts.entry(rule_key.clone()).or_default();
        out.findings.push(Finding {
            rule: "R3",
            file: ctx.rel_path.to_owned(),
            line,
            key: format!("R3|{}|{}|{}:{}", ctx.rel_path, fn_name, rule_key, n),
            message,
        });
        *n += 1;
    };

    for i in 0..t.len() {
        if ctx.in_test[i] {
            continue;
        }
        let tok = &t[i];
        // (a) method-style iteration: `name.iter()` etc.
        if tok.kind == TokenKind::Ident
            && hashed.contains(&tok.text)
            && i + 3 < t.len()
            && t[i + 1].is_punct('.')
            && t[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&t[i + 2].text.as_str())
            && t[i + 3].is_punct('(')
            && !ctx.allowed("R3", tok.line)
            && !ctx.allowed("R3", t[i + 2].line)
        {
            let fn_name = ctx.fn_at(i).to_owned();
            report(
                format!("{fn_name}|{}.{}", tok.text, t[i + 2].text),
                t[i + 2].line,
                &fn_name,
                format!(
                    "fn {fn_name}: `{}.{}()` iterates a hash-ordered collection — use a \
                     BTree collection or sort, then annotate `bgk-allow: R3`",
                    tok.text,
                    t[i + 2].text
                ),
                out,
                &mut counts,
            );
        }
        // (a) for-loop iteration: `for … in [&mut] name {`.
        if tok.is_ident("in") && i + 1 < t.len() {
            let mut j = i + 1;
            while j < t.len() && (t[j].is_punct('&') || t[j].is_ident("mut")) {
                j += 1;
            }
            if j + 1 < t.len()
                && t[j].kind == TokenKind::Ident
                && hashed.contains(&t[j].text)
                && t[j + 1].is_punct('{')
                && !ctx.allowed("R3", t[j].line)
            {
                let fn_name = ctx.fn_at(i).to_owned();
                report(
                    format!("{fn_name}|for-in {}", t[j].text),
                    t[j].line,
                    &fn_name,
                    format!(
                        "fn {fn_name}: `for … in {}` iterates a hash-ordered collection — \
                         use a BTree collection or sort, then annotate `bgk-allow: R3`",
                        t[j].text
                    ),
                    out,
                    &mut counts,
                );
            }
        }
        // (b) wall-clock reads in library code.
        if (tok.is_ident("Instant") || tok.is_ident("SystemTime"))
            && i + 3 < t.len()
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("now")
            && !ctx.allowed("R3", tok.line)
        {
            let fn_name = ctx.fn_at(i).to_owned();
            report(
                format!("{fn_name}|{}::now", tok.text),
                tok.line,
                &fn_name,
                format!(
                    "fn {fn_name}: `{}::now()` in library code — timing belongs in \
                     crates/bench; profile-only timers need `bgk-allow: R3`",
                    tok.text
                ),
                out,
                &mut counts,
            );
        }
    }
}

/// R4 — cache growth. Inserting into a field named `*cache*`/`*memo*` in a
/// type with no accounting/eviction hook (`bytes_accounted` or an `evict*`
/// symbol in non-test code) is unbounded growth — fatal at fleet tenant
/// counts (ROADMAP item 5). Findings stay in the baseline until the type
/// grows a hook.
fn rule_r4(ctx: &FileCtx<'_>, out: &mut FileAnalysis) {
    let t = ctx.tokens;
    // Cache-named fields declared by structs in this file.
    let mut cache_fields: BTreeSet<String> = BTreeSet::new();
    for (_, start, end) in &ctx.struct_spans {
        let mut depth = 0i32;
        for i in *start..=*end {
            if t[i].is_punct('{') {
                depth += 1;
            } else if t[i].is_punct('}') {
                depth -= 1;
            } else if depth == 1
                && t[i].kind == TokenKind::Ident
                && i < *end
                && t[i + 1].is_punct(':')
                && (i + 2 > *end || !t[i + 2].is_punct(':'))
            {
                let name = t[i].text.to_lowercase();
                if name.contains("cache") || name.contains("memo") {
                    cache_fields.insert(t[i].text.clone());
                }
            }
        }
    }
    if cache_fields.is_empty() {
        return;
    }
    let has_hook = t.iter().enumerate().any(|(i, tok)| {
        tok.kind == TokenKind::Ident
            && !ctx.in_test[i]
            && (tok.text == "bytes_accounted" || tok.text.starts_with("evict"))
    });
    if has_hook {
        return;
    }
    let mut counts: std::collections::BTreeMap<String, u32> = Default::default();
    for i in 0..t.len() {
        if ctx.in_test[i] {
            continue;
        }
        let tok = &t[i];
        if tok.kind == TokenKind::Ident
            && cache_fields.contains(&tok.text)
            && i + 3 < t.len()
            && t[i + 1].is_punct('.')
            && t[i + 2].kind == TokenKind::Ident
            && (t[i + 2].text == "insert" || t[i + 2].text == "entry")
            && t[i + 3].is_punct('(')
            && !ctx.allowed("R4", tok.line)
            && !ctx.allowed("R4", t[i + 2].line)
        {
            let fn_name = ctx.fn_at(i).to_owned();
            let n = counts.entry(format!("{fn_name}|{}", tok.text)).or_default();
            out.findings.push(Finding {
                rule: "R4",
                file: ctx.rel_path.to_owned(),
                line: t[i + 2].line,
                key: format!(
                    "R4|{}|{}|{}.{}:{}",
                    ctx.rel_path,
                    fn_name,
                    tok.text,
                    t[i + 2].text,
                    n
                ),
                message: format!(
                    "fn {fn_name}: `{}.{}(…)` grows a cache field with no \
                     `bytes_accounted`/eviction hook in its type — unbounded memory \
                     at fleet tenant counts (ROADMAP item 5)",
                    tok.text,
                    t[i + 2].text
                ),
            });
            *n += 1;
        }
    }
}

/// R5 — bit-identity pairing. Every public `*_with(…, Parallelism…)` engine
/// entry point — a `pub fn`, or a method declared inside a `pub trait`
/// block (strategy contracts route engine selection through traits) — must
/// (a) have a serial reference symbol (`<stem>` or `<stem>_reference`) in
/// the same file, and (b) be exercised by name in the workspace
/// bit-identity suites under `tests/tests/`.
fn rule_r5(ctx: &FileCtx<'_>, suite_text: &str, out: &mut FileAnalysis) {
    let t = ctx.tokens;
    // Token ranges of `pub trait { … }` bodies: their methods are engine
    // entry points too, but carry no `pub` of their own.
    let mut trait_bodies: Vec<(usize, usize)> = Vec::new();
    let mut i = 1;
    while i < t.len() {
        if t[i].is_ident("trait") && t[i - 1].is_ident("pub") {
            let mut j = i;
            while j < t.len() && !t[j].is_punct('{') {
                j += 1;
            }
            let start = j;
            let mut depth = 0i32;
            while j < t.len() {
                if t[j].is_punct('{') {
                    depth += 1;
                } else if t[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            trait_bodies.push((start, j));
            i = j;
        }
        i += 1;
    }
    let in_pub_trait = |idx: usize| trait_bodies.iter().any(|&(a, b)| idx > a && idx < b);
    for i in 1..t.len() {
        if ctx.in_test[i] || !t[i].is_ident("fn") {
            continue;
        }
        if !t[i - 1].is_ident("pub") && !in_pub_trait(i) {
            continue;
        }
        let Some(name_tok) = t.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident || !name_tok.text.ends_with("_with") {
            continue;
        }
        let name = &name_tok.text;
        // Scan the parameter list for a `Parallelism` knob.
        let mut j = i + 2;
        while j < t.len() && !t[j].is_punct('(') {
            j += 1;
        }
        let mut depth = 0i32;
        let mut has_knob = false;
        while j < t.len() {
            if t[j].is_punct('(') {
                depth += 1;
            } else if t[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t[j].is_ident("Parallelism") {
                has_knob = true;
            }
            j += 1;
        }
        if !has_knob {
            continue;
        }
        let stem = name.trim_end_matches("_with");
        let reference = format!("{stem}_reference");
        let has_serial = t
            .windows(2)
            .any(|w| w[0].is_ident("fn") && (w[1].is_ident(stem) || w[1].is_ident(&reference)));
        if !has_serial && !ctx.allowed("R5", name_tok.line) {
            out.findings.push(Finding {
                rule: "R5",
                file: ctx.rel_path.to_owned(),
                line: name_tok.line,
                key: format!("R5|{}|{}|missing-serial", ctx.rel_path, name),
                message: format!(
                    "pub fn {name}: no serial reference symbol `{stem}`/`{reference}` \
                     in the same file — parallel engines need an auditable \
                     single-threaded twin"
                ),
            });
        }
        if !suite_text.contains(name.as_str()) && !ctx.allowed("R5", name_tok.line) {
            out.findings.push(Finding {
                rule: "R5",
                file: ctx.rel_path.to_owned(),
                line: name_tok.line,
                key: format!("R5|{}|{}|untested", ctx.rel_path, name),
                message: format!(
                    "pub fn {name}: not exercised by any bit-identity suite under \
                     tests/tests/ — parallel output is unverified against serial"
                ),
            });
        }
    }
}

/// R6 — panic audit. Inventories `.unwrap()` / `.expect(` / `panic!` in
/// non-test library code against the committed baseline: new sites fail
/// the gate, removed sites must leave the baseline (ratchet down only).
fn rule_r6(ctx: &FileCtx<'_>, out: &mut FileAnalysis) {
    let t = ctx.tokens;
    let mut counts: std::collections::BTreeMap<String, u32> = Default::default();
    for i in 0..t.len() {
        if ctx.in_test[i] {
            continue;
        }
        let tok = &t[i];
        let kind = if tok.kind == TokenKind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && i > 0
            && t[i - 1].is_punct('.')
            && i + 1 < t.len()
            && t[i + 1].is_punct('(')
        {
            Some(tok.text.as_str())
        } else if tok.is_ident("panic") && i + 1 < t.len() && t[i + 1].is_punct('!') {
            Some("panic!")
        } else {
            None
        };
        let Some(kind) = kind else { continue };
        if ctx.allowed("R6", tok.line) {
            continue;
        }
        let fn_name = ctx.fn_at(i).to_owned();
        let n = counts.entry(format!("{fn_name}|{kind}")).or_default();
        out.findings.push(Finding {
            rule: "R6",
            file: ctx.rel_path.to_owned(),
            line: tok.line,
            key: format!("R6|{}|{}|{}:{}", ctx.rel_path, fn_name, kind, n),
            message: format!(
                "fn {fn_name}: `{kind}` in library code — inventoried; prefer a \
                 recoverable error path (baseline may only shrink)"
            ),
        });
        *n += 1;
    }
}

/// One paragraph of rationale per rule, for `--explain`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "R1" => {
            "R1 lock discipline — the hub's correctness story is one sanctioned \
             acquisition order: registration (durable tenant creation) → shard \
             (registry bucket) → tenant-writer → wal (durable log + checkpoint) → \
             published (snapshot swap) → caches (reader-audit / audit-session \
             caches) → intern-table (cross-tenant model sharing). Within a \
             function, acquiring a classified lock at a rank ≤ any held classified \
             guard, or two guards of one class, is a deadlock in waiting; calling an \
             expensive engine symbol (omega_*/estimate_*/anonymize_*/report_*) under \
             any classified guard serializes the serving path. Temporary guards \
             (`…lock().expect(…)` chains without a `let`) die at their statement; \
             `let`-bound guards at their block or an explicit `drop`. Annotate \
             deliberate exceptions `// bgk-allow: R1 <why>`."
        }
        "R2" => {
            "R2 pool usage — every parallel stage submits jobs to the process-wide \
             `bgkanon_data::shared_pool()`; `std::thread::spawn`/`scope` anywhere \
             else (including tests) pays per-call spawn/join, oversubscribes the \
             machine under concurrent sessions, and dodges the pool's \
             jobs-never-block-on-jobs deadlock contract. The only sanctioned spawn \
             site is the pool layer itself, `crates/data/src/exec.rs`. Bin targets \
             that still scope (CLI serve demo, bench harness) are carried in the \
             baseline; library crates must stay at zero."
        }
        "R3" => {
            "R3 determinism — publication and audit output must be a pure function \
             of (table, requirement, seed): the paper-reproduction benches assert \
             bit-identity between engines and across republications. Iterating \
             `HashMap`/`HashSet` orders by hash seed, and wall-clock reads \
             (`Instant::now`/`SystemTime::now`) leak time into library behavior — \
             both are confined to `crates/bench` (and annotated profile timers). \
             Fix by switching to BTree collections (as `Table::group_by_qi` and \
             `FullDomain::partition` do) or sorting before emission, then annotate \
             the site `// bgk-allow: R3 <how order is restored>`."
        }
        "R4" => {
            "R4 cache growth — every `insert`/`entry` into a `*cache*`/`*memo*` \
             field of a type with no `bytes_accounted`/`evict*` hook grows without \
             bound. Correctness is unaffected (all caches are rebuild-on-miss) but \
             ROADMAP item 5 (bounded-memory multi-tenancy) requires accounting + \
             eviction on every one. The baseline carries today's debt; new \
             unaccounted caches fail the gate."
        }
        "R5" => {
            "R5 bit-identity pairing — each public `*_with(…, Parallelism…)` engine \
             entry point must keep a single-threaded reference twin (`<stem>` or \
             `<stem>_reference`) in the same file and be exercised by name in the \
             `tests/tests/` bit-identity suites. The parallel engines are only \
             trustworthy because every one is property-tested bitwise against its \
             serial reference."
        }
        "R6" => {
            "R6 panic audit — `.unwrap()`/`.expect(`/`panic!` in non-test library \
             code are inventoried against the committed baseline: the gate fails on \
             any new site, and fixed sites must be deleted from the baseline so the \
             count only ratchets down. Pair with the CI clippy step \
             (`-W clippy::unwrap_used` on crates/core + crates/privacy) when \
             burning down."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(source: &str) -> FileAnalysis {
        analyze_file("crates/fixture/src/lib.rs", source, "")
    }

    #[test]
    fn r2_flags_thread_scope_and_spawn() {
        let a =
            lib("fn f() { std::thread::scope(|s| {}); }\nfn g() { std::thread::spawn(|| {}); }");
        assert_eq!(a.findings.iter().filter(|f| f.rule == "R2").count(), 2);
        // …but not in the pool layer itself.
        let pool = analyze_file(
            "crates/data/src/exec.rs",
            "fn f() { std::thread::spawn(|| {}); }",
            "",
        );
        assert!(pool.findings.is_empty());
    }

    #[test]
    fn r2_ignores_strings_comments_and_pool_submission() {
        let a = lib("// std::thread::scope is forbidden\n\
             fn f() { let s = \"std::thread::spawn\"; pool.spawn(|| {}); scope.spawn(|| {}); }");
        assert!(a.findings.iter().all(|f| f.rule != "R2"));
    }

    #[test]
    fn r1_order_violation_and_clean_order() {
        // readers (rank 4) held while taking tenants (rank 1): violation.
        let bad = lib(
            "fn f(&self) { let mut readers = self.readers.lock().unwrap(); \
             let t = self.shard.tenants.lock().unwrap(); }",
        );
        assert!(bad
            .findings
            .iter()
            .any(|f| f.rule == "R1" && f.key.contains("order")));
        // writer (2) then published (3): ascending, sanctioned.
        let good = lib(
            "fn f(&self) { let mut session = entry.writer.lock().unwrap(); \
             *entry.published.write().unwrap() = x; }",
        );
        assert!(good.findings.iter().all(|f| f.rule != "R1"));
        assert_eq!(good.lock_sites.len(), 2);
    }

    #[test]
    fn r1_guard_dies_at_block_end_or_drop() {
        let scoped = lib("fn f(&self) { { let g = self.readers.lock().unwrap(); } \
             let t = self.shard.tenants.lock().unwrap(); }");
        assert!(scoped.findings.iter().all(|f| f.rule != "R1"));
        let dropped = lib(
            "fn f(&self) { let g = self.readers.lock().unwrap(); drop(g); \
             let t = self.shard.tenants.lock().unwrap(); }",
        );
        assert!(dropped.findings.iter().all(|f| f.rule != "R1"));
    }

    #[test]
    fn r1_chained_guard_is_consumed_within_its_statement() {
        // `let cached = memo.lock().expect(…).get(…).cloned();` drops the
        // guard at the `;` — the binding holds the clone, not the guard —
        // so a second same-class lock in the next statement is fine.
        let a = lib(
            "fn f(&self) { let cached = memo.lock().expect(\"m\").get(&k).cloned(); \
             memo.lock().expect(\"m\").insert(k, v); }",
        );
        assert!(a.findings.iter().all(|f| f.rule != "R1"));
        assert_eq!(a.lock_sites.iter().filter(|s| s.bound).count(), 0);
    }

    #[test]
    fn r1_expensive_call_under_guard() {
        let bad = lib("fn f(&self) { let g = self.writer.lock().unwrap(); \
             let m = estimate_prior(&t); }");
        assert!(bad
            .findings
            .iter()
            .any(|f| f.rule == "R1" && f.key.contains("expensive")));
        // The same call after the guard's statement-free block is clean.
        let good = lib("fn f(&self) { { let g = self.writer.lock().unwrap(); } \
             let m = estimate_prior(&t); }");
        assert!(good.findings.iter().all(|f| f.rule != "R1"));
    }

    #[test]
    fn r3_flags_hash_iteration_not_btree() {
        let bad = lib("use std::collections::HashMap;\n\
             fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); \
             for (k, v) in &m { } let _: Vec<_> = m.values().collect(); }");
        assert_eq!(bad.findings.iter().filter(|f| f.rule == "R3").count(), 2);
        let good = lib("use std::collections::BTreeMap;\n\
             fn f() { let mut m: BTreeMap<u32, u32> = BTreeMap::new(); \
             for (k, v) in &m { } }");
        assert!(good.findings.iter().all(|f| f.rule != "R3"));
    }

    #[test]
    fn r3_allows_annotated_sites_and_timing_rule() {
        let a = lib("fn f(m: &HashMap<u32, u32>) {\n\
             // bgk-allow: R3 collected then sorted below\n\
             let mut v: Vec<_> = m.iter().collect();\n\
             let t = std::time::Instant::now();\n}");
        assert_eq!(a.findings.iter().filter(|f| f.rule == "R3").count(), 1);
        assert!(a.findings[0].key.contains("Instant"));
    }

    #[test]
    fn r4_cache_field_without_hook() {
        let bad = lib("struct S { risk_cache: HashMap<u64, f64> }\n\
             impl S { fn put(&mut self, k: u64, v: f64) { self.risk_cache.insert(k, v); } }");
        assert_eq!(bad.findings.iter().filter(|f| f.rule == "R4").count(), 1);
        let hooked = lib("struct S { risk_cache: HashMap<u64, f64> }\n\
             impl S { fn put(&mut self, k: u64, v: f64) { self.risk_cache.insert(k, v); }\n\
             fn evict_cold(&mut self) { self.risk_cache.clear(); } }");
        assert!(hooked.findings.iter().all(|f| f.rule != "R4"));
    }

    #[test]
    fn r5_requires_serial_twin_and_suite_coverage() {
        let src = "impl E { pub fn solve_with(&self, p: Parallelism) -> u32 { 0 } }";
        let uncovered = analyze_file("crates/fixture/src/lib.rs", src, "");
        assert_eq!(
            uncovered.findings.iter().filter(|f| f.rule == "R5").count(),
            2
        );
        let paired = analyze_file(
            "crates/fixture/src/lib.rs",
            "impl E { pub fn solve(&self) -> u32 { 0 }\n\
             pub fn solve_with(&self, p: Parallelism) -> u32 { 0 } }",
            "assert_eq!(e.solve_with(Parallelism::Serial), e.solve_with(par));",
        );
        assert!(paired.findings.iter().all(|f| f.rule != "R5"));
    }

    #[test]
    fn r5_covers_pub_trait_methods() {
        // A trait-declared `*_with(…, Parallelism)` carries no `pub` of its
        // own but is an engine entry point all the same.
        let uncovered = analyze_file(
            "crates/fixture/src/lib.rs",
            "pub trait S { fn grow_with(&self, p: Parallelism) -> u32; }",
            "",
        );
        assert_eq!(
            uncovered.findings.iter().filter(|f| f.rule == "R5").count(),
            2
        );
        // A default-method serial twin + suite mention clears it.
        let paired = analyze_file(
            "crates/fixture/src/lib.rs",
            "pub trait S { fn grow(&self) -> u32 { self.grow_with(Parallelism::Serial) }\n\
             fn grow_with(&self, p: Parallelism) -> u32; }",
            "assert_eq!(s.grow_with(Parallelism::Serial), s.grow_with(par));",
        );
        assert!(paired.findings.iter().all(|f| f.rule != "R5"));
        // Private trait methods stay out of scope.
        let private = analyze_file(
            "crates/fixture/src/lib.rs",
            "trait S { fn grow_with(&self, p: Parallelism) -> u32; }",
            "",
        );
        assert!(private.findings.iter().all(|f| f.rule != "R5"));
    }

    #[test]
    fn r6_inventories_panics_outside_tests() {
        let a = lib("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
             fn h() { panic!(\"boom\"); }\n\
             #[cfg(test)] mod tests { #[test] fn t() { None::<u32>.unwrap(); } }");
        assert_eq!(a.findings.iter().filter(|f| f.rule == "R6").count(), 3);
    }

    #[test]
    fn bin_targets_are_exempt_from_library_rules_but_not_r2() {
        let a = analyze_file(
            "crates/core/src/bin/bgkanon-cli.rs",
            "fn main() { let x = Some(1).unwrap(); std::thread::scope(|s| {}); }",
            "",
        );
        assert!(a.findings.iter().all(|f| f.rule != "R6"));
        assert_eq!(a.findings.iter().filter(|f| f.rule == "R2").count(), 1);
    }

    #[test]
    fn explain_covers_all_rules() {
        for rule in ["R1", "R2", "R3", "R4", "R5", "R6"] {
            assert!(explain(rule).is_some());
        }
        assert!(explain("R9").is_none());
    }
}
