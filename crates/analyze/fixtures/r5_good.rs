//! R5 negative fixture: the `_with` entry point keeps a serial reference
//! in the same file (suite coverage is supplied by the test harness).

impl Engine {
    /// Single-threaded reference the parallel path is property-tested
    /// against, bit for bit.
    pub fn solve_risks(&self, table: &Table) -> Vec<f64> {
        run_serial(table)
    }

    pub fn solve_risks_with(&self, table: &Table, parallelism: Parallelism) -> Vec<f64> {
        match parallelism {
            Parallelism::Serial => self.solve_risks(table),
            _ => run_parallel(table, parallelism),
        }
    }
}
