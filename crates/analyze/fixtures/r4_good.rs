//! R4 negative fixture: the cache accounts its bytes and can evict, so
//! inserts are sanctioned.

struct RiskCache {
    risk_cache: HashMap<Vec<u64>, Arc<Vec<f64>>>,
    bytes_accounted: usize,
}

impl RiskCache {
    fn put(&mut self, signature: Vec<u64>, risks: Arc<Vec<f64>>) {
        self.bytes_accounted += risks.len() * 8;
        self.risk_cache.insert(signature, risks);
    }

    fn evict_until(&mut self, budget: usize) {
        while self.bytes_accounted > budget {
            self.risk_cache.clear();
            self.bytes_accounted = 0;
        }
    }
}
