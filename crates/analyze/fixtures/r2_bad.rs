//! R2 positive fixture: per-call OS threads instead of the shared pool.

fn fan_out(chunks: Vec<Chunk>) -> Vec<Out> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(|| process(chunk)))
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    })
}

fn fire_and_forget(job: Job) {
    std::thread::spawn(move || job.run());
}
