//! R4 positive fixture: a memo field that only ever grows — no
//! accounting, no eviction.

struct RiskMemo {
    memo_by_signature: HashMap<Vec<u64>, Arc<Vec<f64>>>,
}

impl RiskMemo {
    fn put(&mut self, signature: Vec<u64>, risks: Arc<Vec<f64>>) {
        self.memo_by_signature.insert(signature, risks);
    }
}
