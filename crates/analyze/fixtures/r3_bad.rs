//! R3 positive fixture: hash-ordered iteration and a wall-clock read in
//! library code.

fn histogram(rows: &[Row]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for row in rows {
        *counts.entry(row.value).or_insert(0) += 1;
    }
    // Emission order depends on the hash seed.
    counts.iter().map(|(k, v)| (*k, *v)).collect()
}

fn stamp() -> Instant {
    std::time::Instant::now()
}
