//! R1 negative fixture: the sanctioned ascending order, block-scoped
//! guards, and expensive work done outside every lock.

impl Hub {
    fn ascending(&self, snapshot: Snapshot) {
        let mut session = self.writer.lock().expect("publish session");
        session.generation += 1;
        *self.published.write().expect("published snapshot") = snapshot;
    }

    fn scoped(&self, table: &Table) -> Report {
        let groups = {
            let session = self.writer.lock().expect("publish session");
            session.groups.clone()
        };
        // Guard died at the block above; the audit runs lock-free.
        report_groups(table, &groups)
    }

    fn dropped(&self) -> usize {
        let tenants = self.tenants.lock().expect("shard registry");
        let n = tenants.len();
        drop(tenants);
        let readers = self.readers.lock().expect("reader caches");
        n + readers.len()
    }

    fn durable_apply(&self, snapshot: Snapshot) {
        // The durable write path: tenant-writer, then the WAL guard, then
        // the published swap — strictly ascending ranks.
        let mut session = self.writer.lock().expect("publish session");
        session.generation += 1;
        let mut wal = self.wal.lock().expect("tenant wal");
        wal.append(session.generation);
        drop(wal);
        *self.published.write().expect("published snapshot") = snapshot;
    }
}
