//! R1 negative fixture: the sanctioned ascending order, block-scoped
//! guards, and expensive work done outside every lock.

impl Hub {
    fn ascending(&self, snapshot: Snapshot) {
        let mut session = self.writer.lock().expect("publish session");
        session.generation += 1;
        *self.published.write().expect("published snapshot") = snapshot;
    }

    fn scoped(&self, table: &Table) -> Report {
        let groups = {
            let session = self.writer.lock().expect("publish session");
            session.groups.clone()
        };
        // Guard died at the block above; the audit runs lock-free.
        report_groups(table, &groups)
    }

    fn dropped(&self) -> usize {
        let tenants = self.tenants.lock().expect("shard registry");
        let n = tenants.len();
        drop(tenants);
        let readers = self.readers.lock().expect("reader caches");
        n + readers.len()
    }

    fn durable_apply(&self, snapshot: Snapshot) {
        // The durable write path: tenant-writer, then the WAL guard, then
        // the published swap — strictly ascending ranks.
        let mut session = self.writer.lock().expect("publish session");
        session.generation += 1;
        let mut wal = self.wal.lock().expect("tenant wal");
        wal.append(session.generation);
        drop(wal);
        *self.published.write().expect("published snapshot") = snapshot;
    }

    fn intern_last(&self, model: Model) -> usize {
        // The intern table is the bottom of the order: rank 7 may be taken
        // under any other guard, never the other way around.
        let readers = self.readers.lock().expect("reader caches");
        let mut interned = self.interned.lock().expect("intern table");
        interned.insert(model);
        readers.len() + interned.len()
    }

    fn intern_scoped(&self, table: &Table, key: u64) -> Model {
        {
            let interned = self.interned.lock().expect("intern table");
            if let Some(hit) = interned.get(key) {
                return hit;
            }
        }
        // The intern guard died at the block; estimation runs lock-free.
        estimate_model(table)
    }
}
