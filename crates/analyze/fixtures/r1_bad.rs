//! R1 positive fixture: descending lock order and an expensive call
//! under a held guard. Analyzed under a synthetic library path — this file
//! never compiles into the workspace.

impl Hub {
    fn descending(&self) {
        let mut readers = self.readers.lock().expect("reader caches");
        // Rank 4 held while taking rank 1: violates shard -> tenant-writer
        // -> published -> caches.
        let shard = self.tenants.lock().expect("shard registry");
        readers.push(shard.len());
    }

    fn expensive_under_guard(&self, table: &Table) -> Report {
        let session = self.writer.lock().expect("publish session");
        // The whole audit runs while the tenant-writer guard is held.
        let report = report_groups(table, &session.groups);
        report
    }

    fn wal_after_publish(&self, snapshot: Snapshot) {
        let mut published = self.published.write().expect("published snapshot");
        // Rank 5 held while taking rank 4: appending to the WAL after the
        // published swap would ack a snapshot the log may never record.
        let mut wal = self.wal.lock().expect("tenant wal");
        wal.append(0);
        *published = snapshot;
    }

    fn shard_under_intern(&self) -> usize {
        let interned = self.interned.lock().expect("intern table");
        // Rank 7 held while taking rank 2: the intern table is the bottom
        // of the order; nothing may be acquired under it.
        let tenants = self.tenants.lock().expect("shard registry");
        interned.len() + tenants.len()
    }

    fn estimate_under_intern(&self, table: &Table) -> Model {
        let mut interned = self.interned.lock().expect("intern table");
        // Kernel estimation runs while the cross-tenant intern lock is
        // held, serializing every fleet audit behind one estimation.
        let model = estimate_model(table);
        interned.insert(model)
    }
}
