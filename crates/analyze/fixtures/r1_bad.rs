//! R1 positive fixture: descending lock order and an expensive call
//! under a held guard. Analyzed under a synthetic library path — this file
//! never compiles into the workspace.

impl Hub {
    fn descending(&self) {
        let mut readers = self.readers.lock().expect("reader caches");
        // Rank 4 held while taking rank 1: violates shard -> tenant-writer
        // -> published -> caches.
        let shard = self.tenants.lock().expect("shard registry");
        readers.push(shard.len());
    }

    fn expensive_under_guard(&self, table: &Table) -> Report {
        let session = self.writer.lock().expect("publish session");
        // The whole audit runs while the tenant-writer guard is held.
        let report = report_groups(table, &session.groups);
        report
    }

    fn wal_after_publish(&self, snapshot: Snapshot) {
        let mut published = self.published.write().expect("published snapshot");
        // Rank 5 held while taking rank 4: appending to the WAL after the
        // published swap would ack a snapshot the log may never record.
        let mut wal = self.wal.lock().expect("tenant wal");
        wal.append(0);
        *published = snapshot;
    }
}
