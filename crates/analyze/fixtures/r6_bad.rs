//! R6 positive fixture: three panic paths in library code.

fn pick(values: &[f64], at: Option<usize>) -> f64 {
    let index = at.unwrap();
    if index >= values.len() {
        panic!("index {index} out of range");
    }
    *values.get(index).expect("checked above")
}
