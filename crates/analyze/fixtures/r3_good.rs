//! R3 negative fixture: BTree collections iterate in key order, and the
//! one remaining hash iteration is sorted and annotated.

fn histogram(rows: &[Row]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for row in rows {
        *counts.entry(row.value).or_insert(0) += 1;
    }
    counts.iter().map(|(k, v)| (*k, *v)).collect()
}

fn keys(index: &HashMap<u32, usize>) -> Vec<u32> {
    // bgk-allow: R3 collected then sorted before return
    let mut out: Vec<u32> = index.keys().copied().collect();
    out.sort_unstable();
    out
}
