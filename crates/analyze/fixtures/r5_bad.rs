//! R5 positive fixture: a parallel entry point with no serial twin and no
//! bit-identity suite coverage.

impl Engine {
    pub fn solve_risks_with(&self, table: &Table, parallelism: Parallelism) -> Vec<f64> {
        run_parallel(table, parallelism)
    }
}
