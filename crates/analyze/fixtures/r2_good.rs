//! R2 negative fixture: jobs submitted to the process-wide pool. The
//! string and comment below mention std::thread::spawn without tripping
//! the lexical scan.

fn fan_out(chunks: Vec<Chunk>) -> Vec<Out> {
    // Unlike std::thread::scope, the pool amortizes spawn cost.
    let jobs: Vec<_> = chunks
        .into_iter()
        .map(|chunk| move || process(&chunk))
        .collect();
    let banned = "std::thread::spawn";
    assert!(!banned.is_empty());
    bgkanon_data::shared_pool().run(jobs)
}
