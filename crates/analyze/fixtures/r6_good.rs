//! R6 negative fixture: recoverable error paths, panics confined to
//! tests, and one annotated invariant.

fn pick(values: &[f64], at: Option<usize>) -> Option<f64> {
    values.get(at?).copied()
}

fn invariant(values: &[f64]) -> f64 {
    // bgk-allow: R6 non-empty by construction in every caller
    *values.first().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let none: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| none.unwrap()).is_err());
    }
}
