//! Fixture corpus: one positive and one negative file per rule under
//! `crates/analyze/fixtures/`. Each fixture is analyzed under a synthetic
//! library-crate path (`crates/fixture/src/lib.rs`) — the fixtures never
//! compile into the workspace, they only feed the lexer.

use std::fs;
use std::path::PathBuf;

use bgkanon_analyze::analyze_file;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Run a fixture as library code; `suite_text` feeds the R5 coverage scan.
fn run(name: &str, suite_text: &str) -> Vec<(String, String)> {
    analyze_file("crates/fixture/src/lib.rs", &fixture(name), suite_text)
        .findings
        .into_iter()
        .map(|f| (f.rule.to_owned(), f.key))
        .collect()
}

fn rules_of(findings: &[(String, String)]) -> Vec<&str> {
    findings.iter().map(|(rule, _)| rule.as_str()).collect()
}

#[test]
fn r1_fixtures() {
    let bad = run("r1_bad.rs", "");
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R1" && key.contains("order")),
        "descending lock order must be flagged: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R1" && key.contains("expensive:report_groups")),
        "expensive call under guard must be flagged: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R1" && key.contains("order:wal")),
        "taking the wal guard under the published guard must be flagged: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R1" && key.contains("order:shard")),
        "taking the shard guard under the intern-table guard must be flagged: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R1" && key.contains("expensive:estimate_model")),
        "estimation under the intern-table guard must be flagged: {bad:?}"
    );
    let good = run("r1_good.rs", "");
    assert!(
        !rules_of(&good).contains(&"R1"),
        "sanctioned order/scoping must pass: {good:?}"
    );
}

#[test]
fn r2_fixtures() {
    let bad = run("r2_bad.rs", "");
    assert_eq!(
        rules_of(&bad).iter().filter(|r| **r == "R2").count(),
        2,
        "one scope + one spawn: {bad:?}"
    );
    let good = run("r2_good.rs", "");
    assert!(
        !rules_of(&good).contains(&"R2"),
        "pool submission (and strings/comments) must pass: {good:?}"
    );
}

#[test]
fn r3_fixtures() {
    let bad = run("r3_bad.rs", "");
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R3" && key.contains("counts.iter")),
        "hash iteration must be flagged: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R3" && key.contains("Instant::now")),
        "wall-clock read must be flagged: {bad:?}"
    );
    let good = run("r3_good.rs", "");
    assert!(
        !rules_of(&good).contains(&"R3"),
        "BTree iteration and annotated sorts must pass: {good:?}"
    );
}

#[test]
fn r4_fixtures() {
    let bad = run("r4_bad.rs", "");
    assert_eq!(
        rules_of(&bad).iter().filter(|r| **r == "R4").count(),
        1,
        "unaccounted memo insert: {bad:?}"
    );
    let good = run("r4_good.rs", "");
    assert!(
        !rules_of(&good).contains(&"R4"),
        "bytes_accounted + evict_until must sanction the cache: {good:?}"
    );
}

#[test]
fn r5_fixtures() {
    let bad = run("r5_bad.rs", "");
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R5" && key.contains("missing-serial")),
        "missing serial twin must be flagged: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|(rule, key)| rule == "R5" && key.contains("untested")),
        "missing suite coverage must be flagged: {bad:?}"
    );
    let good = run(
        "r5_good.rs",
        "assert_eq!(e.solve_risks_with(&t, Parallelism::Serial), e.solve_risks_with(&t, par));",
    );
    assert!(
        !rules_of(&good).contains(&"R5"),
        "paired + suite-covered entry point must pass: {good:?}"
    );
}

#[test]
fn r6_fixtures() {
    let bad = run("r6_bad.rs", "");
    assert_eq!(
        rules_of(&bad).iter().filter(|r| **r == "R6").count(),
        3,
        "unwrap + panic! + expect: {bad:?}"
    );
    let good = run("r6_good.rs", "");
    assert!(
        !rules_of(&good).contains(&"R6"),
        "recoverable paths, test panics and annotated invariants must pass: {good:?}"
    );
}

#[test]
fn fixtures_do_not_cross_contaminate() {
    // Each `bad` fixture trips exactly its own rule — keeps the corpus
    // honest as rules evolve.
    for (name, rule) in [
        ("r2_bad.rs", "R2"),
        ("r3_bad.rs", "R3"),
        ("r4_bad.rs", "R4"),
        ("r6_bad.rs", "R6"),
    ] {
        let findings = run(name, "");
        assert!(
            findings.iter().all(|(r, _)| r == rule),
            "{name} must only trip {rule}: {findings:?}"
        );
    }
}
