//! The gate, applied to the workspace that ships it: the committed tree
//! must match `crates/analyze/baseline.json` exactly, and an injected
//! violation in a library crate must fail the gate. This is the same check
//! CI runs via `cargo run -p bgkanon-analyze`.

use std::fs;
use std::path::{Path, PathBuf};

use bgkanon_analyze::{analyze_workspace, Baseline, Diff};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn workspace_matches_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze_workspace(&root).expect("walk workspace");
    assert!(
        analysis.files.len() > 50,
        "expected the full crate tree, scanned only {} files",
        analysis.files.len()
    );
    let baseline = Baseline::load(&root.join("crates/analyze/baseline.json")).expect("baseline");
    let diff = Diff::compute(&analysis.findings, &baseline);
    assert!(
        diff.is_clean(),
        "gate out of sync with baseline — {} new, {} stale\nnew: {:#?}\nstale: {:#?}\n\
         fix the findings (or annotate `// bgk-allow: Rn reason`) or rerun \
         `cargo run -p bgkanon-analyze -- --update-baseline` after review",
        diff.new.len(),
        diff.stale.len(),
        diff.new,
        diff.stale,
    );
}

#[test]
fn workspace_baseline_has_no_library_r2_findings() {
    // The pool-usage rule is fully burned down in library crates: the only
    // carried R2 debt is the two sanctioned bin targets.
    let root = workspace_root();
    let baseline = Baseline::load(&root.join("crates/analyze/baseline.json")).expect("baseline");
    let library_r2: Vec<&String> = baseline
        .entries
        .keys()
        .filter(|key| key.starts_with("R2|") && !key.contains("/src/bin/"))
        .collect();
    assert!(
        library_r2.is_empty(),
        "library crates must not spawn threads directly: {library_r2:?}"
    );
}

#[test]
fn injected_violation_fails_the_gate() {
    // A synthetic workspace with one violating library file must produce
    // findings that an empty baseline rejects — the non-zero-exit path of
    // the CLI, exercised at the library layer.
    let dir = std::env::temp_dir().join(format!("bgkanon-analyze-inject-{}", std::process::id()));
    let src = dir.join("crates").join("demo").join("src");
    fs::create_dir_all(&src).expect("temp workspace");
    fs::write(
        src.join("lib.rs"),
        "pub fn fan_out() {\n    std::thread::spawn(|| {});\n}\n",
    )
    .expect("write violation");

    let analysis = analyze_workspace(&dir).expect("walk temp workspace");
    let diff = Diff::compute(&analysis.findings, &Baseline::default());
    assert!(!diff.is_clean(), "injected R2 violation must fail the gate");
    assert!(diff.new.iter().any(|f| f.rule == "R2"));

    fs::remove_dir_all(&dir).ok();
    // And the committed baseline never absorbs a file that does not exist.
    assert!(!Path::new("crates/demo").exists());
}
