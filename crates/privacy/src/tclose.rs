//! t-closeness (Li, Li & Venkatasubramanian, cited as \[4\]).
//!
//! The distribution of the sensitive attribute within each group must be
//! within EMD `t` of the whole-table distribution `Q`. The ground distance
//! follows the sensitive attribute's type: ordered EMD for numeric domains,
//! hierarchical EMD for categorical domains with a generalization hierarchy
//! (the paper's Occupation attribute has a height-2 hierarchy).

use bgkanon_data::{AttributeKind, Table};
use bgkanon_stats::emd::{hierarchical_emd, ordered_emd};
use bgkanon_stats::Dist;

use crate::requirement::{GroupView, PrivacyRequirement};

#[derive(Debug, Clone)]
enum Ground {
    Ordered,
    Hierarchical(bgkanon_data::Hierarchy),
}

/// The t-closeness requirement.
#[derive(Debug, Clone)]
pub struct TCloseness {
    t: f64,
    table_distribution: Dist,
    ground: Ground,
}

impl TCloseness {
    /// Build for `table` with threshold `t ∈ [0, 1]`. The reference
    /// distribution `Q` and the ground distance are derived from the table's
    /// sensitive attribute.
    pub fn new(t: f64, table: &Table) -> Self {
        assert!((0.0..=1.0).contains(&t), "t must be in [0, 1], got {t}");
        let table_distribution =
            Dist::new(table.sensitive_distribution()).expect("table distribution is valid");
        let sensitive = table.schema().sensitive_attribute();
        let ground = match sensitive.kind() {
            AttributeKind::Numeric { .. } => Ground::Ordered,
            AttributeKind::Categorical { hierarchy, .. } => Ground::Hierarchical(hierarchy.clone()),
        };
        TCloseness {
            t,
            table_distribution,
            ground,
        }
    }

    /// The threshold `t`.
    pub fn t(&self) -> f64 {
        self.t
    }

    /// EMD between a group distribution and the table distribution.
    pub fn emd_to_table(&self, group_dist: &Dist) -> f64 {
        match &self.ground {
            Ground::Ordered => ordered_emd(group_dist, &self.table_distribution),
            Ground::Hierarchical(h) => hierarchical_emd(h, group_dist, &self.table_distribution),
        }
    }
}

impl PrivacyRequirement for TCloseness {
    fn name(&self) -> String {
        format!("{}-closeness", self.t)
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        if group.is_empty() {
            return false;
        }
        let dist = Dist::from_counts(group.sensitive_counts).expect("non-empty group");
        self.emd_to_table(&dist) <= self.t
    }

    fn counts_decidable(&self) -> bool {
        true
    }

    fn is_satisfied_by_counts(&self, len: usize, sensitive_counts: &[u32]) -> bool {
        if len == 0 {
            return false;
        }
        let dist = Dist::from_counts(sensitive_counts).expect("non-empty group");
        self.emd_to_table(&dist) <= self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    #[test]
    fn whole_table_always_satisfies() {
        let t = toy::hospital_table();
        let rows: Vec<usize> = (0..t.len()).collect();
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        // The whole table is at EMD 0 from itself.
        assert!(TCloseness::new(0.0, &t).is_satisfied(&g));
    }

    #[test]
    fn skewed_group_fails_small_t() {
        let t = toy::hospital_table();
        // A pure-Flu group is far from the table's (2,2,3,2)/9 mix.
        let rows = [2usize, 4, 6];
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        assert!(!TCloseness::new(0.1, &t).is_satisfied(&g));
        assert!(TCloseness::new(1.0, &t).is_satisfied(&g));
    }

    #[test]
    fn monotone_in_t() {
        let t = toy::hospital_table();
        let rows = [0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        let mut prev = false;
        for i in 0..=10 {
            let thr = i as f64 / 10.0;
            let sat = TCloseness::new(thr, &t).is_satisfied(&g);
            assert!(!prev || sat, "satisfaction must be monotone in t");
            prev = sat;
        }
    }

    #[test]
    fn numeric_sensitive_uses_ordered_emd() {
        use bgkanon_data::{Attribute, Schema, TableBuilder};
        use std::sync::Arc;
        let schema = Arc::new(
            Schema::new(
                vec![Attribute::numeric_range("Age", 20, 60).unwrap()],
                Attribute::numeric("Salary", vec![30.0, 40.0, 50.0]).unwrap(),
            )
            .unwrap(),
        );
        let mut b = TableBuilder::new(schema);
        for (age, sal) in [("20", "30"), ("30", "40"), ("40", "50"), ("50", "40")] {
            b.push_text(&[age, sal]).unwrap();
        }
        let t = b.build().unwrap();
        let tc = TCloseness::new(0.5, &t);
        let rows = [0usize, 1];
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        // Group {30,40} vs table {30,40,50,40}: finite ordered EMD.
        assert!(tc.is_satisfied(&g));
        assert_eq!(tc.t(), 0.5);
    }

    #[test]
    #[should_panic(expected = "t must be in [0, 1]")]
    fn invalid_t_rejected() {
        let t = toy::hospital_table();
        let _ = TCloseness::new(1.5, &t);
    }

    #[test]
    fn name_contains_t() {
        let t = toy::hospital_table();
        assert_eq!(TCloseness::new(0.25, &t).name(), "0.25-closeness");
    }
}
