//! k-anonymity: protection against identity disclosure.
//!
//! Each released group (equivalence class) must contain at least `k`
//! records. The experiments enforce k-anonymity *together with* each
//! attribute-disclosure model (§V: "we also enforce k-anonymity ... together
//! with each of the above privacy models", with `k = ℓ`).

use crate::requirement::{GroupView, PrivacyRequirement};

/// The k-anonymity requirement.
#[derive(Debug, Clone, Copy)]
pub struct KAnonymity {
    k: usize,
}

impl KAnonymity {
    /// Require every group to contain at least `k ≥ 1` records.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KAnonymity { k }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl PrivacyRequirement for KAnonymity {
    fn name(&self) -> String {
        format!("{}-anonymity", self.k)
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        group.len() >= self.k
    }

    fn counts_decidable(&self) -> bool {
        true
    }

    fn is_satisfied_by_counts(&self, len: usize, _sensitive_counts: &[u32]) -> bool {
        len >= self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    #[test]
    fn threshold_behaviour() {
        let t = toy::hospital_table();
        let rows: Vec<usize> = (0..3).collect();
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        assert!(KAnonymity::new(3).is_satisfied(&g));
        assert!(!KAnonymity::new(4).is_satisfied(&g));
        assert!(KAnonymity::new(1).is_satisfied(&g));
    }

    #[test]
    fn name_and_accessor() {
        let k = KAnonymity::new(5);
        assert_eq!(k.name(), "5-anonymity");
        assert_eq!(k.k(), 5);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = KAnonymity::new(0);
    }
}
