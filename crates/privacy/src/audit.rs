//! Auditing a published grouping against an adversary — the probabilistic
//! background-knowledge attack of §V.A.
//!
//! Given the original table, the published partition into groups, and an
//! adversary profile, the [`Auditor`] computes every tuple's disclosure risk
//! `D[Ppri, Ppos]` and reports the worst case plus the number of
//! **vulnerable tuples** (risk above the threshold `t`) — the quantity
//! plotted in Fig. 1.
//!
//! Three execution paths compute the same risks, bit for bit:
//!
//! * [`Auditor::tuple_risks_reference`] — the per-group **reference**
//!   path, a direct transcription of §V.A: one prior lookup and one
//!   posterior per row;
//! * [`Auditor::tuple_risks`] / [`Auditor::report`] — the layout-native
//!   serial engine: on columnar tables a **flat-scan** path that
//!   enumerates the distinct QI points once with the counting-sort spine,
//!   resolves each point's prior once, and reuses the batched engine's
//!   allocation-free kernels and signature memo; on row-major tables the
//!   reference path;
//! * [`Auditor::tuple_risks_with`] / [`Auditor::report_with`] — the
//!   **batched** engine: groups are distributed over worker jobs on the
//!   process-wide [`shared_pool`](bgkanon_data::shared_pool)
//!   that share the one `Arc<Adversary>` prior model, posterior/permanent
//!   evaluations are memoized under a *group signature* (the sequence of
//!   prior identities plus the sensitive histogram — two groups with the
//!   same signature provably have the same risks), and the Ω-estimate runs
//!   through the allocation-free kernels of `bgkanon_inference::omega` with
//!   per-worker scratch buffers. Risks are bit-identical to the reference
//!   path; `tests/tests/parallel.rs` asserts this.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bgkanon_data::{Layout, Parallelism, Table};
use bgkanon_inference::{
    exact_posteriors, omega_column_sums, omega_posterior_into, omega_posteriors, GroupPriors,
};
use bgkanon_knowledge::Adversary;
use bgkanon_stats::measure::BeliefDistance;
use bgkanon_stats::Dist;

/// How many groups a batch worker claims per scheduling step: large enough
/// to amortize the atomic increment, small enough to balance uneven group
/// sizes.
const GROUP_BATCH: usize = 64;

/// Result of auditing one published table against one adversary.
///
/// ```
/// use std::sync::Arc;
/// use bgkanon_knowledge::Adversary;
/// use bgkanon_privacy::Auditor;
/// use bgkanon_stats::SmoothedJs;
///
/// let table = bgkanon_data::toy::hospital_table();
/// let auditor = Auditor::new(
///     Arc::new(Adversary::t_closeness(&table)),
///     Arc::new(SmoothedJs::paper_default(table.schema().sensitive_distance())),
/// );
/// let report = auditor.report(&table, &bgkanon_data::toy::hospital_groups(), 0.1);
/// assert!(report.worst_case >= report.mean);
/// assert!(report.risk_quantile(1.0) >= report.risk_quantile(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-row disclosure risk, indexed like the original table.
    pub risks: Vec<f64>,
    /// `max_q D[Ppri, Ppos]` — the worst-case disclosure risk (Fig. 3).
    pub worst_case: f64,
    /// Mean risk across tuples.
    pub mean: f64,
    /// Number of tuples whose risk exceeds the audit threshold (Fig. 1).
    pub vulnerable: usize,
    /// The audit threshold used for `vulnerable`.
    pub threshold: f64,
}

impl AuditReport {
    /// Risk quantile over the audited tuples (`q ∈ [0, 1]`; `q = 0.5` is
    /// the median, `q = 1.0` the worst case). Ignores uncovered rows.
    pub fn risk_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut covered: Vec<f64> = self.risks.iter().copied().filter(|r| !r.is_nan()).collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        let idx = ((covered.len() - 1) as f64 * q).round() as usize;
        covered[idx]
    }
}

/// Replays the attack: prior from the adversary, posterior via the
/// Ω-estimate over each published group (optionally exact Bayesian
/// inference for small groups).
///
/// ```
/// use std::sync::Arc;
/// use bgkanon_data::Parallelism;
/// use bgkanon_knowledge::{Adversary, Bandwidth};
/// use bgkanon_privacy::Auditor;
/// use bgkanon_stats::SmoothedJs;
///
/// let table = bgkanon_data::toy::hospital_table();
/// let adversary = Arc::new(Adversary::kernel(
///     &table,
///     Bandwidth::uniform(0.3, 2).unwrap(),
/// ));
/// let measure = Arc::new(SmoothedJs::paper_default(table.schema().sensitive_distance()));
/// let auditor = Auditor::new(adversary, measure);
/// let groups = bgkanon_data::toy::hospital_groups();
/// // The batched engine returns the same risks as the reference path,
/// // bit for bit.
/// let reference = auditor.report(&table, &groups, 0.25);
/// let batched = auditor.report_with(&table, &groups, 0.25, Parallelism::Auto);
/// assert_eq!(reference.worst_case.to_bits(), batched.worst_case.to_bits());
/// ```
#[derive(Clone)]
pub struct Auditor {
    adversary: Arc<Adversary>,
    measure: Arc<dyn BeliefDistance>,
    /// Groups of at most this size are audited with exact inference instead
    /// of the Ω-estimate. 0 disables exact inference.
    exact_below: usize,
}

impl Auditor {
    /// Build from an adversary profile and a belief-distance measure.
    pub fn new(adversary: Arc<Adversary>, measure: Arc<dyn BeliefDistance>) -> Self {
        Auditor {
            adversary,
            measure,
            exact_below: 0,
        }
    }

    /// Use exact Bayesian inference (instead of the Ω-estimate) for groups
    /// of at most `k` tuples — slower but removes the approximation error
    /// quantified in Fig. 2. Keep `k` modest (≤ 16): the exact computation
    /// is exponential in the number of distinct sensitive values.
    pub fn use_exact_below(mut self, k: usize) -> Self {
        self.exact_below = k;
        self
    }

    /// The adversary being simulated.
    pub fn adversary(&self) -> &Arc<Adversary> {
        &self.adversary
    }

    /// The belief-distance measure in use.
    pub fn measure(&self) -> &Arc<dyn BeliefDistance> {
        &self.measure
    }

    /// The exact-inference cutoff set by
    /// [`use_exact_below`](Self::use_exact_below) (0 when disabled).
    pub fn exact_below(&self) -> usize {
        self.exact_below
    }

    /// Disclosure risk of every tuple under the published `groups`
    /// (disjoint row-index sets covering the table).
    ///
    /// Dispatches on the table's physical layout: columnar tables run the
    /// flat-scan serial engine (radix row→point resolution over contiguous
    /// columns, allocation-free Ω kernels, signature memo), row-major
    /// tables the retained row-at-a-time reference path. Both are
    /// bit-identical — [`tuple_risks_reference`](Self::tuple_risks_reference)
    /// is always available as the ground truth.
    pub fn tuple_risks(&self, table: &Table, groups: &[Vec<usize>]) -> Vec<f64> {
        if table.layout() == Layout::Columnar {
            self.tuple_risks_flat(table, groups)
        } else {
            self.tuple_risks_reference(table, groups)
        }
    }

    /// The row-at-a-time reference path — a direct transcription of §V.A:
    /// one prior lookup and one posterior per row, no memoization. Kept
    /// callable on any layout as the ground truth the faster engines are
    /// verified against.
    pub fn tuple_risks_reference(&self, table: &Table, groups: &[Vec<usize>]) -> Vec<f64> {
        let mut risks = vec![f64::NAN; table.len()];
        for rows in groups {
            if rows.is_empty() {
                continue;
            }
            let priors =
                GroupPriors::from_table_rows(table, rows, |qi| self.adversary.prior(qi).clone());
            let posteriors = if rows.len() <= self.exact_below {
                exact_posteriors(&priors)
            } else {
                omega_posteriors(&priors)
            };
            for (j, &row) in rows.iter().enumerate() {
                risks[row] = self.measure.distance(priors.prior(j), &posteriors[j]);
            }
        }
        risks
    }

    /// The columnar flat-scan serial engine. Instead of one hash lookup
    /// per *row*, the table's distinct QI points are enumerated once with
    /// the counting-sort spine (`qi_sorted_rows`, sequential passes over
    /// the contiguous code vectors) and each distinct point's prior is
    /// resolved exactly once; groups then read their priors by point id.
    /// Posteriors run through the allocation-free Ω kernels and the group
    /// signature memo of the batched engine — identical inputs, identical
    /// arithmetic, so risks are bit-identical to the reference path.
    fn tuple_risks_flat(&self, table: &Table, groups: &[Vec<usize>]) -> Vec<f64> {
        let n = table.len();
        let d = table.qi_count();
        let m = table.schema().sensitive_domain_size();

        // Row → distinct-point id via one radix pass; `reps[p]` is a
        // representative row of point `p`.
        let order = table.qi_sorted_rows();
        let cols: Vec<_> = (0..d).map(|a| table.qi_col(a)).collect();
        let mut point_of = vec![0u32; n];
        let mut reps: Vec<u32> = Vec::new();
        let mut prev = usize::MAX;
        for &r in &order {
            let r = r as usize;
            if reps.is_empty() || cols.iter().any(|c| c.get(r) != c.get(prev)) {
                reps.push(r as u32);
            }
            point_of[r] = (reps.len() - 1) as u32;
            prev = r;
        }

        // One prior resolution per distinct point, not per row.
        let mut qi = Vec::with_capacity(d);
        let priors_by_point: Vec<&Dist> = reps
            .iter()
            .map(|&r| {
                table.qi_into(r as usize, &mut qi);
                self.adversary.prior(&qi)
            })
            .collect();

        let memo: Mutex<HashMap<Vec<u64>, Arc<Vec<f64>>>> = Mutex::new(HashMap::new());
        let mut scratch = AuditScratch::default();
        let mut out: Vec<(usize, f64)> = Vec::new();
        for rows in groups {
            if rows.is_empty() {
                continue;
            }
            scratch.priors.clear();
            scratch.prior_ids.clear();
            for &r in rows {
                let p = priors_by_point[point_of[r] as usize];
                scratch.priors.push(p);
                scratch.prior_ids.push(std::ptr::from_ref(p) as u64);
            }
            table.sensitive_counts_into(rows, &mut scratch.counts);
            scratch.signature.clear();
            scratch.signature.extend_from_slice(&scratch.prior_ids);
            scratch
                .signature
                .extend(scratch.counts.iter().map(|&c| u64::from(c)));
            self.audit_prepared(rows, m, &memo, &mut scratch, &mut out);
        }
        let mut risks = vec![f64::NAN; n];
        for (row, risk) in out {
            risks[row] = risk;
        }
        risks
    }

    /// Full audit with vulnerability threshold `t`.
    pub fn report(&self, table: &Table, groups: &[Vec<usize>], t: f64) -> AuditReport {
        self.assemble_report(self.tuple_risks(table, groups), t)
    }

    /// Disclosure risks with an explicit execution engine.
    ///
    /// [`Parallelism::Serial`] runs the layout-native serial engine (the
    /// columnar flat-scan path on columnar tables, the row-at-a-time
    /// reference on row-major ones); any other knob runs the batched
    /// engine with that many workers, sharing this auditor's
    /// `Arc<Adversary>` across them and memoizing posterior computations by
    /// group signature. All paths produce bit-identical risks.
    pub fn tuple_risks_with(
        &self,
        table: &Table,
        groups: &[Vec<usize>],
        parallelism: Parallelism,
    ) -> Vec<f64> {
        if parallelism.is_serial() {
            self.tuple_risks(table, groups)
        } else {
            self.tuple_risks_batched(table, groups, parallelism.effective_threads())
        }
    }

    /// Full audit with an explicit execution engine (see
    /// [`tuple_risks_with`](Self::tuple_risks_with)).
    pub fn report_with(
        &self,
        table: &Table,
        groups: &[Vec<usize>],
        t: f64,
        parallelism: Parallelism,
    ) -> AuditReport {
        self.assemble_report(self.tuple_risks_with(table, groups, parallelism), t)
    }

    fn assemble_report(&self, risks: Vec<f64>, t: f64) -> AuditReport {
        let mut worst_case = 0.0f64;
        let mut sum = 0.0f64;
        let mut covered = 0usize;
        let mut vulnerable = 0usize;
        for &r in &risks {
            if r.is_nan() {
                continue;
            }
            covered += 1;
            sum += r;
            worst_case = worst_case.max(r);
            if r > t {
                vulnerable += 1;
            }
        }
        let mean = if covered == 0 {
            0.0
        } else {
            sum / covered as f64
        };
        AuditReport {
            risks,
            worst_case,
            mean,
            vulnerable,
            threshold: t,
        }
    }

    /// The batched engine. Worker jobs on the process-wide
    /// [`shared_pool`](bgkanon_data::shared_pool) claim batches of groups
    /// from an atomic cursor; each group's risks are either replayed from
    /// the signature memo or computed once and published to it. Running on
    /// the persistent pool (instead of a per-call `std::thread::scope`)
    /// means a serving process that audits continuously across many
    /// sessions pays thread spawns once, and concurrent audits interleave
    /// on the same workers instead of oversubscribing the machine.
    fn tuple_risks_batched(
        &self,
        table: &Table,
        groups: &[Vec<usize>],
        workers: usize,
    ) -> Vec<f64> {
        let shared = Arc::new(BatchState {
            // O(1): tables share their row buffers.
            table: table.clone(),
            // One row-list copy per call — the same shape (and cost) the
            // `row_groups()` callers already materialize per audit.
            groups: groups.to_vec(),
            cursor: AtomicUsize::new(0),
            memo: Mutex::new(HashMap::new()),
        });
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let auditor = self.clone();
                let state = Arc::clone(&shared);
                move || auditor.audit_worker(&state)
            })
            .collect();
        let outputs = bgkanon_data::shared_pool().run(jobs);
        if std::env::var("BGK_PROFILE").is_ok() {
            eprintln!(
                "batched audit: memo peaked at ~{} bytes over {} group(s)",
                shared.bytes_accounted(),
                groups.len()
            );
        }
        let mut risks = vec![f64::NAN; table.len()];
        for (row, risk) in outputs.into_iter().flatten() {
            risks[row] = risk;
        }
        risks
    }

    /// One worker of the batched engine: claims group batches and returns
    /// `(row, risk)` pairs for the rows it audited.
    fn audit_worker(&self, state: &BatchState) -> Vec<(usize, f64)> {
        let m = state.table.schema().sensitive_domain_size();
        let mut out: Vec<(usize, f64)> = Vec::new();
        let mut scratch = AuditScratch::default();
        loop {
            let start = state.cursor.fetch_add(GROUP_BATCH, Ordering::Relaxed);
            if start >= state.groups.len() {
                return out;
            }
            for rows in &state.groups[start..state.groups.len().min(start + GROUP_BATCH)] {
                if rows.is_empty() {
                    continue;
                }
                self.audit_group(&state.table, rows, m, &state.memo, &mut scratch, &mut out);
            }
        }
    }

    /// Resolve a group's priors, prior identities, sensitive histogram and
    /// memo signature into `scratch`.
    ///
    /// Each member's prior is resolved once, against the shared model. The
    /// model is immutable for the duration of the audit, so a prior's
    /// address identifies it: equal addresses ⇒ the very same `Dist`.
    ///
    /// The group signature is the *sequence* of prior identities plus the
    /// sensitive histogram. The sequence (not just the multiset) matters
    /// because the reference path accumulates column sums — and the exact
    /// path its permanent DP — in row order, so only an order-preserving
    /// replay is guaranteed bit-identical.
    fn prepare_group<'a>(&'a self, table: &Table, rows: &[usize], scratch: &mut AuditScratch<'a>) {
        scratch.priors.clear();
        scratch.prior_ids.clear();
        for &r in rows {
            table.qi_into(r, &mut scratch.qi_buf);
            let p = self.adversary.prior(&scratch.qi_buf);
            scratch.priors.push(p);
            scratch.prior_ids.push(std::ptr::from_ref(p) as u64);
        }
        table.sensitive_counts_into(rows, &mut scratch.counts);

        scratch.signature.clear();
        scratch.signature.extend_from_slice(&scratch.prior_ids);
        scratch
            .signature
            .extend(scratch.counts.iter().map(|&c| u64::from(c)));
    }

    /// Audit one group, replaying the memo when its signature was already
    /// solved.
    fn audit_group<'a>(
        &'a self,
        table: &Table,
        rows: &[usize],
        m: usize,
        memo: &Mutex<HashMap<Vec<u64>, Arc<Vec<f64>>>>,
        scratch: &mut AuditScratch<'a>,
        out: &mut Vec<(usize, f64)>,
    ) {
        self.prepare_group(table, rows, scratch);
        self.audit_prepared(rows, m, memo, scratch, out);
    }

    /// Memo lookup + solve + emit for a group whose scratch (priors,
    /// counts, signature) is already prepared — shared by the batched
    /// workers and the columnar flat-scan serial engine.
    fn audit_prepared(
        &self,
        rows: &[usize],
        m: usize,
        memo: &Mutex<HashMap<Vec<u64>, Arc<Vec<f64>>>>,
        scratch: &mut AuditScratch<'_>,
        out: &mut Vec<(usize, f64)>,
    ) {
        let cached = memo
            .lock()
            .expect("audit memo lock")
            .get(&scratch.signature)
            .cloned();
        let solved = match cached {
            Some(solved) => solved,
            None => {
                let solved = Arc::new(self.solve_group(rows, m, scratch));
                memo.lock()
                    .expect("audit memo lock")
                    .insert(scratch.signature.clone(), Arc::clone(&solved));
                solved
            }
        };
        for (&row, &risk) in rows.iter().zip(solved.iter()) {
            out.push((row, risk));
        }
    }

    /// Compute one group's risks, positionally aligned with its rows — the
    /// value the memo caches. Arithmetic mirrors the reference path exactly.
    fn solve_group(&self, rows: &[usize], m: usize, scratch: &mut AuditScratch<'_>) -> Vec<f64> {
        if rows.len() <= self.exact_below {
            // Exact inference (with its §III.C permanent evaluations) is
            // priced per group; memoization is what saves it from being
            // recomputed for repeated signatures.
            let priors: Vec<Dist> = scratch.priors.iter().map(|&p| (*p).clone()).collect();
            let group = GroupPriors::from_counts(priors, scratch.counts.clone());
            let posteriors = exact_posteriors(&group);
            return (0..rows.len())
                .map(|j| {
                    self.prior_distance(
                        scratch.prior_ids[j],
                        group.prior(j),
                        &posteriors[j],
                        &mut scratch.prepared,
                    )
                })
                .collect();
        }
        // Ω-estimate through the allocation-free kernels, evaluated once per
        // distinct prior in the group (identical inputs give identical
        // floats, so skipping the re-evaluation preserves bit-identity).
        // Small groups dedup with a linear scan (cheaper than hashing);
        // large ones use a map so a degenerate giant group stays O(k).
        scratch.col_sums.clear();
        scratch.col_sums.resize(m, 0.0);
        omega_column_sums(scratch.priors.iter().copied(), &mut scratch.col_sums);
        const LINEAR_DEDUP_MAX: usize = 64;
        let by_scan = rows.len() <= LINEAR_DEDUP_MAX;
        let mut bucket: Option<Dist> = None;
        let mut distinct: Vec<(u64, f64)> = Vec::new();
        let mut distinct_map: HashMap<u64, f64> = HashMap::new();
        let mut solved = Vec::with_capacity(rows.len());
        for (j, &id) in scratch.prior_ids.iter().enumerate() {
            let cached = if by_scan {
                distinct
                    .iter()
                    .find(|&&(did, _)| did == id)
                    .map(|&(_, risk)| risk)
            } else {
                distinct_map.get(&id).copied()
            };
            if let Some(risk) = cached {
                solved.push(risk);
                continue;
            }
            let prior = scratch.priors[j];
            let mut w = vec![0.0f64; m];
            let posterior =
                if omega_posterior_into(prior, &scratch.counts, &scratch.col_sums, &mut w) {
                    Dist::new(w).expect("normalized")
                } else {
                    bucket
                        .get_or_insert_with(|| {
                            Dist::from_counts(&scratch.counts).expect("group is non-empty")
                        })
                        .clone()
                };
            let risk = self.prior_distance(id, prior, &posterior, &mut scratch.prepared);
            if by_scan {
                distinct.push((id, risk));
            } else {
                distinct_map.insert(id, risk);
            }
            solved.push(risk);
        }
        solved
    }

    /// Distance from a prior (identified by `id`) to `posterior`, routing
    /// through the measure's prepared-prior fast path when it has one. The
    /// prepared value is cached per prior identity for the worker's
    /// lifetime; [`BeliefDistance::prepare_prior`]'s contract guarantees the
    /// result is bit-identical to a plain `distance` call.
    fn prior_distance(
        &self,
        id: u64,
        prior: &Dist,
        posterior: &Dist,
        prepared_cache: &mut HashMap<u64, Option<Dist>>,
    ) -> f64 {
        let prepared = prepared_cache
            .entry(id)
            .or_insert_with(|| self.measure.prepare_prior(prior));
        match prepared {
            Some(prep) => self.measure.prepared_distance(prep, posterior),
            None => self.measure.distance(prior, posterior),
        }
    }
}

/// State one batched-engine call shares across its pooled worker jobs. Jobs
/// are `'static`, so the call's inputs move in by value: the table clone is
/// O(1) (shared row buffers) and the auditor clone is two `Arc`s.
struct BatchState {
    table: Table,
    groups: Vec<Vec<usize>>,
    cursor: AtomicUsize,
    /// Signature → per-prior-identity risks. Two groups share a signature
    /// exactly when they have the same multiset of priors and the same
    /// sensitive histogram, which determines every member's posterior and
    /// therefore its risk.
    memo: Mutex<HashMap<Vec<u64>, Arc<Vec<f64>>>>,
}

impl BatchState {
    /// Heap bytes resident in the batched engine's per-call signature memo
    /// — same accounting convention as [`AuditSession::bytes_accounted`].
    /// The memo dies with the call, so this is a peak-usage telemetry
    /// number (reported under `BGK_PROFILE`), not a standing gauge.
    fn bytes_accounted(&self) -> usize {
        match self.memo.lock() {
            Ok(memo) => memo
                .iter() // bgk-allow: R3 order-independent byte sum
                .map(|(sig, risks)| cache_entry_bytes(sig.len(), risks.len()))
                .sum(),
            Err(_) => 0,
        }
    }
}

/// Estimated owned heap bytes of one signature-memo entry: the boxed key,
/// the shared risk vector payload, and fixed map-entry bookkeeping. An
/// accounting proxy (shared `Arc`s are charged to every holder), not an
/// allocator-exact measurement — the hub's memory budget only needs a
/// consistent, deterministic upper bound.
const CACHE_ENTRY_OVERHEAD: usize = 48;

fn cache_entry_bytes(key_words: usize, risk_count: usize) -> usize {
    key_words * 8 + risk_count * 8 + CACHE_ENTRY_OVERHEAD
}

/// Per-worker scratch buffers of the batched audit engine, borrowing priors
/// from the shared adversary model for the duration of one audit.
#[derive(Default)]
struct AuditScratch<'a> {
    /// Borrowed priors of the current group, in row order.
    priors: Vec<&'a Dist>,
    /// Address identity of each prior.
    prior_ids: Vec<u64>,
    /// Sensitive histogram of the current group.
    counts: Vec<u32>,
    /// Memo key under construction.
    signature: Vec<u64>,
    /// Ω column sums.
    col_sums: Vec<f64>,
    /// Prepared-prior cache of the measure's fast path, keyed by prior
    /// identity and kept for the worker's lifetime.
    prepared: HashMap<u64, Option<Dist>>,
    /// Reused QI gather buffer for per-row prior lookups.
    qi_buf: Vec<u32>,
}

/// One entry of an [`AuditSession`] cache, tagged with the generation of
/// the report that last used it so stale entries can be evicted.
struct CacheEntry {
    generation: u64,
    risks: Arc<Vec<f64>>,
}

/// A retained audit state for repeated publications of an evolving table:
/// an [`Auditor`] plus caches that survive across
/// [`report`](AuditSession::report) calls.
///
/// Two cache levels, both producing risks **bit-identical** to a fresh
/// audit (the values cached are exactly the ones a fresh run computes):
///
/// * a **signature memo** — group signature (prior-identity sequence +
///   sensitive histogram) → per-member risks, the same memo the batched
///   engine builds per call, here kept alive between calls;
/// * a **stamp cache** — an opaque caller-supplied token per group (the
///   publishing engine uses the partition-tree leaf stamp, which changes
///   whenever a leaf's membership changes) → risks, letting unchanged
///   groups skip even the signature computation.
///
/// Invalidation is explicit and keyed by the dirty partitions: after each
/// report, entries not used by that report are dropped, so dissolved groups
/// do not accumulate.
///
/// ```
/// use std::sync::Arc;
/// use bgkanon_knowledge::{Adversary, Bandwidth};
/// use bgkanon_privacy::{AuditSession, Auditor};
/// use bgkanon_stats::SmoothedJs;
///
/// let table = bgkanon_data::toy::hospital_table();
/// let auditor = Auditor::new(
///     Arc::new(Adversary::kernel(&table, Bandwidth::uniform(0.3, 2).unwrap())),
///     Arc::new(SmoothedJs::paper_default(table.schema().sensitive_distance())),
/// );
/// let groups = bgkanon_data::toy::hospital_groups();
/// let fresh = auditor.report(&table, &groups, 0.25);
///
/// let mut session = AuditSession::new(auditor);
/// let first = session.report(&table, &groups, 0.25);
/// let replay = session.report(&table, &groups, 0.25); // served from the memo
/// assert_eq!(first.worst_case.to_bits(), fresh.worst_case.to_bits());
/// assert_eq!(replay.worst_case.to_bits(), fresh.worst_case.to_bits());
/// ```
pub struct AuditSession {
    auditor: Auditor,
    memo: HashMap<Vec<u64>, CacheEntry>,
    stamps: HashMap<u64, CacheEntry>,
    prepared: HashMap<u64, Option<Dist>>,
    generation: u64,
}

impl AuditSession {
    /// Open a session around `auditor`. The auditor's adversary model is
    /// pinned for the session's lifetime — prior identities (and therefore
    /// cached signatures) stay valid across reports.
    pub fn new(auditor: Auditor) -> Self {
        AuditSession {
            auditor,
            memo: HashMap::new(),
            stamps: HashMap::new(),
            prepared: HashMap::new(),
            generation: 0,
        }
    }

    /// The wrapped auditor.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// Number of live signature-memo entries (diagnostics).
    pub fn cached_signatures(&self) -> usize {
        self.memo.len()
    }

    /// Number of live stamp-cache entries (diagnostics).
    pub fn cached_stamps(&self) -> usize {
        self.stamps.len()
    }

    /// Heap bytes resident in this session's caches — signature memo,
    /// stamp cache, and the retained prepared-prior cache. This is the
    /// accounting hook the serving hub's memory budget rolls up per
    /// tenant: a deterministic owned-payload estimate (shared `Arc`s are
    /// charged to every holder), not an allocator-exact RSS.
    pub fn bytes_accounted(&self) -> usize {
        let memo: usize = self
            .memo
            .iter() // bgk-allow: R3 order-independent byte sum
            .map(|(sig, e)| cache_entry_bytes(sig.len(), e.risks.len()))
            .sum();
        let stamps: usize = self
            .stamps
            .values() // bgk-allow: R3 order-independent byte sum
            .map(|e| cache_entry_bytes(1, e.risks.len()))
            .sum();
        let prepared: usize = self
            .prepared
            .values() // bgk-allow: R3 order-independent byte sum
            .map(|d| cache_entry_bytes(1, d.as_ref().map_or(0, |d| d.len())))
            .sum();
        memo + stamps + prepared
    }

    /// Drop every cached entry, keeping the auditor: the demotion hook of
    /// the hub's memory budget. A later report rebuilds the caches on miss
    /// — bit-identically, since every cache is rebuild-on-miss.
    pub fn evict_caches(&mut self) {
        self.memo.clear();
        self.stamps.clear();
        self.prepared.clear();
    }

    /// Audit `groups` with threshold `t`, replaying cached group risks and
    /// computing only the groups whose signature is new. Bit-identical to
    /// [`Auditor::report`] on the same inputs.
    pub fn report(&mut self, table: &Table, groups: &[Vec<usize>], t: f64) -> AuditReport {
        self.report_stamped(table, groups, None, t)
    }

    /// Like [`report`](AuditSession::report), with an optional stamp per
    /// group: a caller-chosen token that must change whenever the group's
    /// membership (row set or order) changes and must never collide between
    /// distinct memberships audited by this session. Stamp hits bypass the
    /// signature computation entirely — the fast path for partitions where
    /// most groups survived the last delta untouched.
    pub fn report_stamped(
        &mut self,
        table: &Table,
        groups: &[Vec<usize>],
        stamps: Option<&[u64]>,
        t: f64,
    ) -> AuditReport {
        let slices: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
        self.report_groups(table, &slices, stamps, t)
    }

    /// The borrowed-slice form of [`report_stamped`](Self::report_stamped)
    /// — callers holding groups inside a larger structure (a published
    /// partition) can audit without deep-copying the row lists.
    ///
    /// NOTE: [`SharedAuditSession::report_groups`] implements the same
    /// two-level stamp/signature replay for the concurrent read path; the
    /// cache *lookup/solve* logic must stay equivalent between the two
    /// (the eviction policies intentionally differ — single-owner evicts
    /// stamps exactly, the shared form needs a grace window for
    /// interleaved readers). Both are pinned by bit-identity tests against
    /// [`Auditor::report`]; a change here needs its mirror there.
    pub fn report_groups(
        &mut self,
        table: &Table,
        groups: &[&[usize]],
        stamps: Option<&[u64]>,
        t: f64,
    ) -> AuditReport {
        if let Some(stamps) = stamps {
            assert_eq!(stamps.len(), groups.len(), "one stamp per group");
        }
        self.generation += 1;
        let generation = self.generation;
        let m = table.schema().sensitive_domain_size();
        let mut risks = vec![f64::NAN; table.len()];
        let auditor = &self.auditor;
        let mut scratch = AuditScratch {
            prepared: std::mem::take(&mut self.prepared),
            ..AuditScratch::default()
        };
        for (gi, rows) in groups.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let stamp = stamps.map(|s| s[gi]);
            let solved = if let Some(entry) = stamp.and_then(|s| self.stamps.get_mut(&s)) {
                entry.generation = generation;
                Arc::clone(&entry.risks)
            } else {
                auditor.prepare_group(table, rows, &mut scratch);
                let solved = match self.memo.get_mut(&scratch.signature) {
                    Some(entry) => {
                        entry.generation = generation;
                        Arc::clone(&entry.risks)
                    }
                    None => {
                        let solved = Arc::new(auditor.solve_group(rows, m, &mut scratch));
                        self.memo.insert(
                            scratch.signature.clone(),
                            CacheEntry {
                                generation,
                                risks: Arc::clone(&solved),
                            },
                        );
                        solved
                    }
                };
                if let Some(s) = stamp {
                    self.stamps.insert(
                        s,
                        CacheEntry {
                            generation,
                            risks: Arc::clone(&solved),
                        },
                    );
                }
                solved
            };
            for (&row, &risk) in rows.iter().zip(solved.iter()) {
                risks[row] = risk;
            }
        }
        self.prepared = std::mem::take(&mut scratch.prepared);
        // Explicit invalidation, keyed by the dirty partitions. Stamps are
        // dropped as soon as the partition stops producing them (the leaf
        // was dissolved or re-stamped). Signature entries get a small grace
        // window: a stamp-served group never touches its memo entry, yet
        // its signature comes straight back when a later delta rebuilds an
        // equal-content group — evicting eagerly would turn that replay
        // into a full Ω recomputation.
        const MEMO_GRACE: u64 = 8;
        self.memo
            .retain(|_, e| e.generation + MEMO_GRACE >= generation);
        self.stamps.retain(|_, e| e.generation == generation);
        self.auditor.assemble_report(risks, t)
    }
}

/// The caches a [`SharedAuditSession`] protects with its one mutex.
struct SharedCaches {
    memo: HashMap<Vec<u64>, CacheEntry>,
    stamps: HashMap<u64, CacheEntry>,
    generation: u64,
}

/// The `Send + Sync` form of [`AuditSession`]: a retained audit state that
/// **any number of reader threads share through `&self`** — the read path
/// of the serving hub, where audits run concurrently against immutable
/// published snapshots while a writer keeps applying deltas.
///
/// Semantics match [`AuditSession`]: the wrapped [`Auditor`] embodies one
/// fixed adversary model (prior identities stay valid for the session's
/// lifetime), and two cache levels replay group risks **bit-identically**
/// to a fresh audit — a signature memo and a caller-stamped fast path. The
/// stamp contract carries over unchanged: a stamp must change whenever the
/// group's membership changes and never collide between distinct
/// memberships audited by this session. Partition-tree leaf stamps satisfy
/// it *across versions of an evolving table*, which is exactly what makes
/// the hub's read path fast — after a delta, only the groups the delta
/// dirtied miss the cache, no matter which reader thread audited the
/// previous version.
///
/// Group solving runs outside the lock; the mutex only guards cache
/// lookups and inserts, so concurrent readers contend for microseconds,
/// not for the Ω computation. Two readers racing on the same cold group
/// may both solve it — they produce identical bits, and the first insert
/// wins.
///
/// ```
/// use std::sync::Arc;
/// use bgkanon_knowledge::{Adversary, Bandwidth};
/// use bgkanon_privacy::{Auditor, SharedAuditSession};
/// use bgkanon_stats::SmoothedJs;
///
/// let table = bgkanon_data::toy::hospital_table();
/// let auditor = Auditor::new(
///     Arc::new(Adversary::kernel(&table, Bandwidth::uniform(0.3, 2).unwrap())),
///     Arc::new(SmoothedJs::paper_default(table.schema().sensitive_distance())),
/// );
/// let groups = bgkanon_data::toy::hospital_groups();
/// let fresh = auditor.report(&table, &groups, 0.25);
///
/// let shared = Arc::new(SharedAuditSession::new(auditor));
/// let slices: Vec<&[usize]> = groups.iter().map(|g| g.as_slice()).collect();
/// // `report_groups` takes `&self`: clone the Arc into as many reader
/// // threads as you like.
/// let replay = shared.report_groups(&table, &slices, None, 0.25);
/// assert_eq!(replay.worst_case.to_bits(), fresh.worst_case.to_bits());
/// ```
pub struct SharedAuditSession {
    auditor: Auditor,
    caches: Mutex<SharedCaches>,
}

impl SharedAuditSession {
    /// Generations a signature-memo entry survives unused — the same grace
    /// window [`AuditSession`] uses, so an equal-content group rebuilt by a
    /// later delta replays instead of recomputing.
    const MEMO_GRACE: u64 = 8;
    /// Generations a stamp entry survives unused. Unlike the single-owner
    /// session (which drops stamps the current report didn't produce),
    /// concurrent readers may interleave reports of adjacent versions, so
    /// a stamp another in-flight reader is about to hit again must not be
    /// evicted the moment one report skips it.
    const STAMP_GRACE: u64 = 4;

    /// Open a shared session around `auditor`. The auditor's adversary
    /// model is pinned for the session's lifetime.
    pub fn new(auditor: Auditor) -> Self {
        SharedAuditSession {
            auditor,
            caches: Mutex::new(SharedCaches {
                memo: HashMap::new(),
                stamps: HashMap::new(),
                generation: 0,
            }),
        }
    }

    /// The wrapped auditor.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// Number of live signature-memo entries (diagnostics).
    pub fn cached_signatures(&self) -> usize {
        self.caches.lock().expect("audit caches").memo.len()
    }

    /// Number of live stamp-cache entries (diagnostics).
    pub fn cached_stamps(&self) -> usize {
        self.caches.lock().expect("audit caches").stamps.len()
    }

    /// Heap bytes resident in the shared caches — the concurrent
    /// counterpart of [`AuditSession::bytes_accounted`], taken under one
    /// brief lock. The adversary model behind the auditor is **not**
    /// counted here: it is charged to its owner (the hub's intern table
    /// for `Adv(b')` models, the caller for external auditors), so a
    /// model shared by many tenants is accounted once.
    pub fn bytes_accounted(&self) -> usize {
        match self.caches.lock() {
            Ok(caches) => {
                let memo: usize = caches
                    .memo
                    .iter() // bgk-allow: R3 order-independent byte sum
                    .map(|(sig, e)| cache_entry_bytes(sig.len(), e.risks.len()))
                    .sum();
                let stamps: usize = caches
                    .stamps
                    .values() // bgk-allow: R3 order-independent byte sum
                    .map(|e| cache_entry_bytes(1, e.risks.len()))
                    .sum();
                memo + stamps
            }
            Err(_) => 0,
        }
    }

    /// Drop every cached entry, keeping the auditor — the demotion hook of
    /// the hub's memory budget. Safe at any time: concurrent reports
    /// rebuild evicted entries on miss, bit-identically.
    pub fn evict_caches(&self) {
        if let Ok(mut caches) = self.caches.lock() {
            caches.memo.clear();
            caches.stamps.clear();
        }
    }

    /// Audit `groups` with threshold `t` through the shared caches —
    /// bit-identical to [`Auditor::report`] on the same inputs, callable
    /// from any number of threads concurrently. `stamps` follows the
    /// [`AuditSession::report_stamped`] contract (one per group; hits skip
    /// even the signature computation).
    ///
    /// NOTE: this mirrors [`AuditSession::report_groups`]'s stamp/signature
    /// replay (see the note there); keep the lookup/solve logic equivalent
    /// when changing either. Differences by design: graced stamp eviction
    /// (interleaved readers), and no persistent prepared-prior cache (it
    /// would serialize readers on the mutex; preparation is per-call).
    pub fn report_groups(
        &self,
        table: &Table,
        groups: &[&[usize]],
        stamps: Option<&[u64]>,
        t: f64,
    ) -> AuditReport {
        if let Some(stamps) = stamps {
            assert_eq!(stamps.len(), groups.len(), "one stamp per group");
        }
        let m = table.schema().sensitive_domain_size();
        let mut risks = vec![f64::NAN; table.len()];

        // Pass 1 (one short lock): bump the generation and collect every
        // stamp hit as an `Arc` clone. Only pointer bumps happen under the
        // lock — the per-row copies run after it is released, so readers in
        // the all-hits steady state contend for microseconds, not for the
        // O(n) risk scatter.
        let generation;
        let mut missed: Vec<usize> = Vec::new();
        let mut hits: Vec<(usize, Arc<Vec<f64>>)> = Vec::new();
        {
            let mut caches = self.caches.lock().expect("audit caches");
            caches.generation += 1;
            generation = caches.generation;
            for (gi, rows) in groups.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                match stamps
                    .map(|s| s[gi])
                    .and_then(|s| caches.stamps.get_mut(&s))
                {
                    Some(entry) => {
                        entry.generation = generation;
                        hits.push((gi, Arc::clone(&entry.risks)));
                    }
                    None => missed.push(gi),
                }
            }
        }
        for (gi, solved) in hits {
            for (&row, &risk) in groups[gi].iter().zip(solved.iter()) {
                risks[row] = risk;
            }
        }

        // Pass 2: solve the misses outside the lock, consulting the
        // signature memo under brief locks.
        let mut scratch = AuditScratch::default();
        for gi in missed {
            let rows = groups[gi];
            self.auditor.prepare_group(table, rows, &mut scratch);
            let cached = {
                let mut caches = self.caches.lock().expect("audit caches");
                caches.memo.get_mut(&scratch.signature).map(|entry| {
                    entry.generation = generation;
                    Arc::clone(&entry.risks)
                })
            };
            let solved = match cached {
                Some(solved) => solved,
                None => {
                    let solved = Arc::new(self.auditor.solve_group(rows, m, &mut scratch));
                    let mut caches = self.caches.lock().expect("audit caches");
                    Arc::clone(
                        &caches
                            .memo
                            .entry(scratch.signature.clone())
                            .or_insert(CacheEntry {
                                generation,
                                risks: solved,
                            })
                            .risks,
                    )
                }
            };
            if let Some(stamp) = stamps.map(|s| s[gi]) {
                let mut caches = self.caches.lock().expect("audit caches");
                caches
                    .stamps
                    .entry(stamp)
                    .and_modify(|e| e.generation = generation)
                    .or_insert(CacheEntry {
                        generation,
                        risks: Arc::clone(&solved),
                    });
            }
            for (&row, &risk) in rows.iter().zip(solved.iter()) {
                risks[row] = risk;
            }
        }

        // Graced invalidation: entries no recent report touched are gone —
        // dissolved groups do not accumulate, while groups a concurrent
        // reader of an adjacent version still replays survive the window.
        {
            let mut caches = self.caches.lock().expect("audit caches");
            let generation = caches.generation;
            caches
                .memo
                .retain(|_, e| e.generation + Self::MEMO_GRACE >= generation);
            caches
                .stamps
                .retain(|_, e| e.generation + Self::STAMP_GRACE >= generation);
        }
        self.auditor.assemble_report(risks, t)
    }
}

impl std::fmt::Debug for SharedAuditSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (memo, stamps) = {
            let caches = self.caches.lock().expect("audit caches");
            (caches.memo.len(), caches.stamps.len())
        };
        f.debug_struct("SharedAuditSession")
            .field("auditor", &self.auditor)
            .field("cached_signatures", &memo)
            .field("cached_stamps", &stamps)
            .finish()
    }
}

impl std::fmt::Debug for AuditSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditSession")
            .field("auditor", &self.auditor)
            .field("cached_signatures", &self.memo.len())
            .field("cached_stamps", &self.stamps.len())
            .finish()
    }
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("adversary", &self.adversary.label())
            .field("measure", &self.measure.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;
    use bgkanon_knowledge::Bandwidth;
    use bgkanon_stats::measure::SmoothedJs;

    fn auditor(table: &Table, b: f64) -> Auditor {
        let adv = Arc::new(Adversary::kernel(
            table,
            Bandwidth::uniform(b, table.qi_count()).unwrap(),
        ));
        let measure = Arc::new(SmoothedJs::paper_default(
            table.schema().sensitive_distance(),
        ));
        Auditor::new(adv, measure)
    }

    #[test]
    fn risks_cover_all_rows() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let risks = a.tuple_risks(&t, &toy::hospital_groups());
        assert_eq!(risks.len(), t.len());
        assert!(risks.iter().all(|r| !r.is_nan() && *r >= 0.0));
    }

    #[test]
    fn flat_scan_engine_is_bit_identical_to_reference() {
        // The columnar flat-scan serial path vs the row-at-a-time §V.A
        // transcription — same table, same groups, bit-identical risks.
        // Both the Ω-estimate and the exact-inference (small-group) routes.
        for (seed, exact_below) in [(3u64, 0usize), (11, 8)] {
            let t = bgkanon_data::adult::generate(400, seed);
            assert_eq!(t.layout(), Layout::Columnar);
            let groups: Vec<Vec<usize>> = (0..t.len())
                .step_by(7)
                .map(|start| (start..(start + 7).min(t.len())).collect())
                .collect();
            for a in [
                auditor(&t, 0.3).use_exact_below(exact_below),
                Auditor::new(
                    Arc::new(Adversary::t_closeness(&t)),
                    Arc::new(SmoothedJs::paper_default(t.schema().sensitive_distance())),
                )
                .use_exact_below(exact_below),
            ] {
                let flat = a.tuple_risks(&t, &groups);
                let reference = a.tuple_risks_reference(&t, &groups);
                for (row, (x, y)) in flat.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "flat vs reference diverge at row {row} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_inference_option_changes_small_group_audits() {
        let t = toy::hospital_table();
        let a_omega = auditor(&t, 0.3);
        let a_exact = auditor(&t, 0.3).use_exact_below(16);
        let groups = toy::hospital_groups();
        let omega_risks = a_omega.tuple_risks(&t, &groups);
        let exact_risks = a_exact.tuple_risks(&t, &groups);
        // Same shape, finite everywhere; generally not identical.
        assert_eq!(omega_risks.len(), exact_risks.len());
        assert!(exact_risks.iter().all(|r| r.is_finite()));
        let max_gap = omega_risks
            .iter()
            .zip(&exact_risks)
            .map(|(o, e)| (o - e).abs())
            .fold(0.0f64, f64::max);
        // Fig. 2's bound: the Ω approximation is close to exact.
        assert!(max_gap < 0.35, "gap {max_gap}");
    }

    #[test]
    fn risk_quantiles_are_monotone() {
        let t = toy::hospital_table();
        let rep = auditor(&t, 0.3).report(&t, &toy::hospital_groups(), 0.1);
        let q25 = rep.risk_quantile(0.25);
        let q50 = rep.risk_quantile(0.5);
        let q100 = rep.risk_quantile(1.0);
        assert!(q25 <= q50 && q50 <= q100);
        assert!((q100 - rep.worst_case).abs() < 1e-12);
    }

    #[test]
    fn report_consistency() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let rep = a.report(&t, &toy::hospital_groups(), 0.05);
        assert!(rep.worst_case >= rep.mean);
        assert!(rep.vulnerable <= t.len());
        assert_eq!(rep.threshold, 0.05);
        // Zero threshold makes every tuple with positive risk vulnerable.
        let rep0 = a.report(&t, &toy::hospital_groups(), 0.0);
        assert!(rep0.vulnerable >= rep.vulnerable);
    }

    #[test]
    fn stronger_adversary_has_higher_worst_case() {
        // Smaller b (sharper prior) must not learn less in the worst case
        // than the blunt adversary on this correlated toy table.
        let t = toy::hospital_table();
        let sharp = auditor(&t, 0.15).report(&t, &toy::hospital_groups(), 0.1);
        let blunt = auditor(&t, 0.9).report(&t, &toy::hospital_groups(), 0.1);
        assert!(
            sharp.worst_case >= blunt.worst_case - 1e-9,
            "sharp {} vs blunt {}",
            sharp.worst_case,
            blunt.worst_case
        );
    }

    #[test]
    fn uncovered_rows_are_nan_and_ignored() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        // Audit only the first group.
        let rep = a.report(&t, &[vec![0, 1, 2]], 0.01);
        assert!(rep.risks[0].is_finite());
        assert!(rep.risks[5].is_nan());
        assert!(rep.vulnerable <= 3);
    }

    #[test]
    fn batched_engine_is_bit_identical_to_reference() {
        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        for auditor in [auditor(&t, 0.3), auditor(&t, 0.3).use_exact_below(16)] {
            let serial = auditor.tuple_risks_with(&t, &groups, Parallelism::Serial);
            for workers in [1usize, 2, 4] {
                let batched = auditor.tuple_risks_with(&t, &groups, Parallelism::threads(workers));
                assert_eq!(serial.len(), batched.len());
                for (row, (s, b)) in serial.iter().zip(&batched).enumerate() {
                    assert!(
                        s.to_bits() == b.to_bits(),
                        "row {row} diverges at {workers} workers: {s} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_engine_handles_constant_prior_adversaries() {
        // A constant-prior adversary makes every group share one prior
        // object — the memo's best case; results must still match.
        let t = toy::hospital_table();
        let adv = Arc::new(Adversary::t_closeness(&t));
        let measure = Arc::new(SmoothedJs::paper_default(t.schema().sensitive_distance()));
        let a = Auditor::new(adv, measure);
        let groups = toy::hospital_groups();
        let serial = a.tuple_risks_with(&t, &groups, Parallelism::Serial);
        let batched = a.tuple_risks_with(&t, &groups, Parallelism::threads(2));
        for (s, b) in serial.iter().zip(&batched) {
            assert_eq!(s.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn report_with_matches_report() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let groups = toy::hospital_groups();
        let serial = a.report(&t, &groups, 0.1);
        let batched = a.report_with(&t, &groups, 0.1, Parallelism::Auto);
        assert_eq!(serial.worst_case.to_bits(), batched.worst_case.to_bits());
        assert_eq!(serial.mean.to_bits(), batched.mean.to_bits());
        assert_eq!(serial.vulnerable, batched.vulnerable);
    }

    #[test]
    fn audit_session_replays_bit_identically() {
        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        let a = auditor(&t, 0.3);
        let fresh = a.report(&t, &groups, 0.1);
        let mut session = AuditSession::new(a);
        let first = session.report(&t, &groups, 0.1);
        assert!(session.cached_signatures() > 0);
        let replay = session.report(&t, &groups, 0.1);
        for ((f, a), b) in fresh.risks.iter().zip(&first.risks).zip(&replay.risks) {
            assert_eq!(f.to_bits(), a.to_bits());
            assert_eq!(f.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn audit_session_stamps_bypass_and_invalidate() {
        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        let mut session = AuditSession::new(auditor(&t, 0.3));
        let stamps = [11u64, 22, 33];
        let first = session.report_stamped(&t, &groups, Some(&stamps), 0.1);
        assert_eq!(session.cached_stamps(), 3);
        // Same stamps: served from the stamp cache, same bits.
        let hit = session.report_stamped(&t, &groups, Some(&stamps), 0.1);
        for (a, b) in first.risks.iter().zip(&hit.risks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Dropping one group evicts its stamp (and eventually its
        // signature) from the caches.
        let fewer = [groups[0].clone(), groups[1].clone()];
        let partial = session.report_stamped(&t, &fewer, Some(&stamps[..2]), 0.1);
        assert_eq!(session.cached_stamps(), 2);
        assert!(partial.risks[groups[2][0]].is_nan());
        let reference = auditor(&t, 0.3).report(&t, &fewer, 0.1);
        assert_eq!(partial.worst_case.to_bits(), reference.worst_case.to_bits());
    }

    #[test]
    fn audit_session_matches_reference_with_exact_inference() {
        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        let a = auditor(&t, 0.3).use_exact_below(16);
        let fresh = a.report(&t, &groups, 0.1);
        let mut session = AuditSession::new(a);
        for _ in 0..2 {
            let rep = session.report(&t, &groups, 0.1);
            for (f, s) in fresh.risks.iter().zip(&rep.risks) {
                assert_eq!(f.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn shared_session_is_send_sync_and_replays_bit_identically() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedAuditSession>();

        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        let slices: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
        let a = auditor(&t, 0.3);
        let fresh = a.report(&t, &groups, 0.1);
        let shared = SharedAuditSession::new(a);
        let stamps = [7u64, 8, 9];
        let first = shared.report_groups(&t, &slices, Some(&stamps), 0.1);
        assert_eq!(shared.cached_stamps(), 3);
        assert!(shared.cached_signatures() > 0);
        let replay = shared.report_groups(&t, &slices, Some(&stamps), 0.1);
        for ((f, a), b) in fresh.risks.iter().zip(&first.risks).zip(&replay.risks) {
            assert_eq!(f.to_bits(), a.to_bits());
            assert_eq!(f.to_bits(), b.to_bits());
        }
        assert!(format!("{shared:?}").contains("SharedAuditSession"));
    }

    #[test]
    fn shared_session_concurrent_readers_match_reference() {
        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        let a = auditor(&t, 0.3);
        let fresh = a.report(&t, &groups, 0.1);
        let shared = Arc::new(SharedAuditSession::new(a));
        let stamps = [1u64, 2, 3];
        // Concurrent readers run as shared-pool jobs (R2: no per-call
        // scopes). The jobs are pool leaves — `report_groups` computes
        // inline and never submits pool work itself.
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let t = t.clone();
                let groups = groups.clone();
                move || {
                    let slices: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
                    (0..8)
                        .map(|_| shared.report_groups(&t, &slices, Some(&stamps), 0.1))
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        let reports: Vec<AuditReport> = bgkanon_data::shared_pool()
            .run(jobs)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(reports.len(), 32);
        for rep in &reports {
            for (f, r) in fresh.risks.iter().zip(&rep.risks) {
                assert_eq!(f.to_bits(), r.to_bits());
            }
        }
    }

    #[test]
    fn shared_session_evicts_unused_entries_after_grace() {
        let t = toy::hospital_table();
        let groups = toy::hospital_groups();
        let slices: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
        let shared = SharedAuditSession::new(auditor(&t, 0.3));
        let _ = shared.report_groups(&t, &slices, Some(&[1, 2, 3]), 0.1);
        let full_stamps = shared.cached_stamps();
        assert_eq!(full_stamps, 3);
        // Keep auditing only the first group; the other two groups' stamps
        // (and eventually signatures) age out of the grace windows.
        for _ in 0..(SharedAuditSession::MEMO_GRACE + SharedAuditSession::STAMP_GRACE) {
            let partial = shared.report_groups(&t, &slices[..1], Some(&[1]), 0.1);
            assert!(partial.risks[groups[0][0]].is_finite());
        }
        assert_eq!(shared.cached_stamps(), 1);
        assert!(shared.cached_signatures() <= 1);
    }

    #[test]
    fn singleton_groups_fully_disclose() {
        // Publishing each tuple alone: posterior = point mass; risk maximal
        // among all groupings for this adversary/measure.
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let singletons: Vec<Vec<usize>> = (0..t.len()).map(|r| vec![r]).collect();
        let alone = a.report(&t, &singletons, 0.05);
        let grouped = a.report(&t, &toy::hospital_groups(), 0.05);
        assert!(alone.worst_case >= grouped.worst_case);
        assert!(alone.vulnerable >= grouped.vulnerable);
    }
}
