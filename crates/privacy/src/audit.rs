//! Auditing a published grouping against an adversary — the probabilistic
//! background-knowledge attack of §V.A.
//!
//! Given the original table, the published partition into groups, and an
//! adversary profile, the [`Auditor`] computes every tuple's disclosure risk
//! `D[Ppri, Ppos]` and reports the worst case plus the number of
//! **vulnerable tuples** (risk above the threshold `t`) — the quantity
//! plotted in Fig. 1.

use std::sync::Arc;

use bgkanon_data::Table;
use bgkanon_inference::{exact_posteriors, omega_posteriors, GroupPriors};
use bgkanon_knowledge::Adversary;
use bgkanon_stats::measure::BeliefDistance;

/// Result of auditing one published table against one adversary.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-row disclosure risk, indexed like the original table.
    pub risks: Vec<f64>,
    /// `max_q D[Ppri, Ppos]` — the worst-case disclosure risk (Fig. 3).
    pub worst_case: f64,
    /// Mean risk across tuples.
    pub mean: f64,
    /// Number of tuples whose risk exceeds the audit threshold (Fig. 1).
    pub vulnerable: usize,
    /// The audit threshold used for `vulnerable`.
    pub threshold: f64,
}

impl AuditReport {
    /// Risk quantile over the audited tuples (`q ∈ [0, 1]`; `q = 0.5` is
    /// the median, `q = 1.0` the worst case). Ignores uncovered rows.
    pub fn risk_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut covered: Vec<f64> = self.risks.iter().copied().filter(|r| !r.is_nan()).collect();
        if covered.is_empty() {
            return 0.0;
        }
        covered.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        let idx = ((covered.len() - 1) as f64 * q).round() as usize;
        covered[idx]
    }
}

/// Replays the attack: prior from the adversary, posterior via the
/// Ω-estimate over each published group (optionally exact Bayesian
/// inference for small groups).
#[derive(Clone)]
pub struct Auditor {
    adversary: Arc<Adversary>,
    measure: Arc<dyn BeliefDistance>,
    /// Groups of at most this size are audited with exact inference instead
    /// of the Ω-estimate. 0 disables exact inference.
    exact_below: usize,
}

impl Auditor {
    /// Build from an adversary profile and a belief-distance measure.
    pub fn new(adversary: Arc<Adversary>, measure: Arc<dyn BeliefDistance>) -> Self {
        Auditor {
            adversary,
            measure,
            exact_below: 0,
        }
    }

    /// Use exact Bayesian inference (instead of the Ω-estimate) for groups
    /// of at most `k` tuples — slower but removes the approximation error
    /// quantified in Fig. 2. Keep `k` modest (≤ 16): the exact computation
    /// is exponential in the number of distinct sensitive values.
    pub fn use_exact_below(mut self, k: usize) -> Self {
        self.exact_below = k;
        self
    }

    /// The adversary being simulated.
    pub fn adversary(&self) -> &Arc<Adversary> {
        &self.adversary
    }

    /// Disclosure risk of every tuple under the published `groups`
    /// (disjoint row-index sets covering the table).
    pub fn tuple_risks(&self, table: &Table, groups: &[Vec<usize>]) -> Vec<f64> {
        let mut risks = vec![f64::NAN; table.len()];
        for rows in groups {
            if rows.is_empty() {
                continue;
            }
            let priors =
                GroupPriors::from_table_rows(table, rows, |qi| self.adversary.prior(qi).clone());
            let posteriors = if rows.len() <= self.exact_below {
                exact_posteriors(&priors)
            } else {
                omega_posteriors(&priors)
            };
            for (j, &row) in rows.iter().enumerate() {
                risks[row] = self.measure.distance(priors.prior(j), &posteriors[j]);
            }
        }
        risks
    }

    /// Full audit with vulnerability threshold `t`.
    pub fn report(&self, table: &Table, groups: &[Vec<usize>], t: f64) -> AuditReport {
        let risks = self.tuple_risks(table, groups);
        let covered: Vec<f64> = risks.iter().copied().filter(|r| !r.is_nan()).collect();
        let worst_case = covered.iter().copied().fold(0.0, f64::max);
        let mean = if covered.is_empty() {
            0.0
        } else {
            covered.iter().sum::<f64>() / covered.len() as f64
        };
        let vulnerable = covered.iter().filter(|&&r| r > t).count();
        AuditReport {
            risks,
            worst_case,
            mean,
            vulnerable,
            threshold: t,
        }
    }
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("adversary", &self.adversary.label())
            .field("measure", &self.measure.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;
    use bgkanon_knowledge::Bandwidth;
    use bgkanon_stats::measure::SmoothedJs;

    fn auditor(table: &Table, b: f64) -> Auditor {
        let adv = Arc::new(Adversary::kernel(
            table,
            Bandwidth::uniform(b, table.qi_count()).unwrap(),
        ));
        let measure = Arc::new(SmoothedJs::paper_default(
            table.schema().sensitive_distance(),
        ));
        Auditor::new(adv, measure)
    }

    #[test]
    fn risks_cover_all_rows() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let risks = a.tuple_risks(&t, &toy::hospital_groups());
        assert_eq!(risks.len(), t.len());
        assert!(risks.iter().all(|r| !r.is_nan() && *r >= 0.0));
    }

    #[test]
    fn exact_inference_option_changes_small_group_audits() {
        let t = toy::hospital_table();
        let a_omega = auditor(&t, 0.3);
        let a_exact = auditor(&t, 0.3).use_exact_below(16);
        let groups = toy::hospital_groups();
        let omega_risks = a_omega.tuple_risks(&t, &groups);
        let exact_risks = a_exact.tuple_risks(&t, &groups);
        // Same shape, finite everywhere; generally not identical.
        assert_eq!(omega_risks.len(), exact_risks.len());
        assert!(exact_risks.iter().all(|r| r.is_finite()));
        let max_gap = omega_risks
            .iter()
            .zip(&exact_risks)
            .map(|(o, e)| (o - e).abs())
            .fold(0.0f64, f64::max);
        // Fig. 2's bound: the Ω approximation is close to exact.
        assert!(max_gap < 0.35, "gap {max_gap}");
    }

    #[test]
    fn risk_quantiles_are_monotone() {
        let t = toy::hospital_table();
        let rep = auditor(&t, 0.3).report(&t, &toy::hospital_groups(), 0.1);
        let q25 = rep.risk_quantile(0.25);
        let q50 = rep.risk_quantile(0.5);
        let q100 = rep.risk_quantile(1.0);
        assert!(q25 <= q50 && q50 <= q100);
        assert!((q100 - rep.worst_case).abs() < 1e-12);
    }

    #[test]
    fn report_consistency() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let rep = a.report(&t, &toy::hospital_groups(), 0.05);
        assert!(rep.worst_case >= rep.mean);
        assert!(rep.vulnerable <= t.len());
        assert_eq!(rep.threshold, 0.05);
        // Zero threshold makes every tuple with positive risk vulnerable.
        let rep0 = a.report(&t, &toy::hospital_groups(), 0.0);
        assert!(rep0.vulnerable >= rep.vulnerable);
    }

    #[test]
    fn stronger_adversary_has_higher_worst_case() {
        // Smaller b (sharper prior) must not learn less in the worst case
        // than the blunt adversary on this correlated toy table.
        let t = toy::hospital_table();
        let sharp = auditor(&t, 0.15).report(&t, &toy::hospital_groups(), 0.1);
        let blunt = auditor(&t, 0.9).report(&t, &toy::hospital_groups(), 0.1);
        assert!(
            sharp.worst_case >= blunt.worst_case - 1e-9,
            "sharp {} vs blunt {}",
            sharp.worst_case,
            blunt.worst_case
        );
    }

    #[test]
    fn uncovered_rows_are_nan_and_ignored() {
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        // Audit only the first group.
        let rep = a.report(&t, &[vec![0, 1, 2]], 0.01);
        assert!(rep.risks[0].is_finite());
        assert!(rep.risks[5].is_nan());
        assert!(rep.vulnerable <= 3);
    }

    #[test]
    fn singleton_groups_fully_disclose() {
        // Publishing each tuple alone: posterior = point mass; risk maximal
        // among all groupings for this adversary/measure.
        let t = toy::hospital_table();
        let a = auditor(&t, 0.3);
        let singletons: Vec<Vec<usize>> = (0..t.len()).map(|r| vec![r]).collect();
        let alone = a.report(&t, &singletons, 0.05);
        let grouped = a.report(&t, &toy::hospital_groups(), 0.05);
        assert!(alone.worst_case >= grouped.worst_case);
        assert!(alone.vulnerable >= grouped.vulnerable);
    }
}
