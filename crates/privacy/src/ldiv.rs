//! The ℓ-diversity family (Machanavajjhala et al., cited as \[3\]).
//!
//! * **Distinct ℓ-diversity**: each group carries at least `ℓ` distinct
//!   sensitive values.
//! * **Probabilistic ℓ-diversity**: the most frequent sensitive value in
//!   each group has relative frequency at most `1/ℓ` — equivalently, a
//!   no-background-knowledge adversary's posterior confidence stays below
//!   `1/ℓ`.

use crate::requirement::{GroupView, PrivacyRequirement};

/// Distinct ℓ-diversity.
#[derive(Debug, Clone, Copy)]
pub struct DistinctLDiversity {
    l: usize,
}

impl DistinctLDiversity {
    /// Require at least `ℓ ≥ 1` distinct sensitive values per group.
    pub fn new(l: usize) -> Self {
        assert!(l >= 1, "ℓ must be at least 1");
        DistinctLDiversity { l }
    }

    /// The parameter `ℓ`.
    pub fn l(&self) -> usize {
        self.l
    }
}

impl PrivacyRequirement for DistinctLDiversity {
    fn name(&self) -> String {
        format!("distinct-{}-diversity", self.l)
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        group.distinct_sensitive() >= self.l
    }

    fn counts_decidable(&self) -> bool {
        true
    }

    fn is_satisfied_by_counts(&self, _len: usize, sensitive_counts: &[u32]) -> bool {
        sensitive_counts.iter().filter(|&&c| c > 0).count() >= self.l
    }
}

/// Probabilistic ℓ-diversity.
#[derive(Debug, Clone, Copy)]
pub struct ProbabilisticLDiversity {
    l: usize,
}

impl ProbabilisticLDiversity {
    /// Require the most frequent sensitive value's relative frequency to be
    /// at most `1/ℓ`, `ℓ ≥ 1`.
    pub fn new(l: usize) -> Self {
        assert!(l >= 1, "ℓ must be at least 1");
        ProbabilisticLDiversity { l }
    }

    /// The parameter `ℓ`.
    pub fn l(&self) -> usize {
        self.l
    }
}

impl PrivacyRequirement for ProbabilisticLDiversity {
    fn name(&self) -> String {
        format!("probabilistic-{}-diversity", self.l)
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        if group.is_empty() {
            return false;
        }
        // max count / |G| ≤ 1/ℓ  ⇔  max count · ℓ ≤ |G|.
        (group.max_sensitive_count() as usize) * self.l <= group.len()
    }

    fn counts_decidable(&self) -> bool {
        true
    }

    fn is_satisfied_by_counts(&self, len: usize, sensitive_counts: &[u32]) -> bool {
        if len == 0 {
            return false;
        }
        let max = sensitive_counts.iter().copied().max().unwrap_or(0);
        (max as usize) * self.l <= len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    fn view<'a>(
        t: &'a bgkanon_data::Table,
        rows: &'a [usize],
        buf: &'a mut Vec<u32>,
    ) -> GroupView<'a> {
        GroupView::compute(t, rows, buf)
    }

    #[test]
    fn distinct_counts_values() {
        let t = toy::hospital_table();
        // Rows 0..3: Emphysema, Cancer, Flu — 3 distinct.
        let rows = [0usize, 1, 2];
        let mut buf = Vec::new();
        let g = view(&t, &rows, &mut buf);
        assert!(DistinctLDiversity::new(3).is_satisfied(&g));
        assert!(!DistinctLDiversity::new(4).is_satisfied(&g));
    }

    #[test]
    fn distinct_fails_on_homogeneous_group() {
        let t = toy::hospital_table();
        // Rows 2 and 4 both carry Flu.
        let rows = [2usize, 4];
        let mut buf = Vec::new();
        let g = view(&t, &rows, &mut buf);
        assert!(DistinctLDiversity::new(1).is_satisfied(&g));
        assert!(!DistinctLDiversity::new(2).is_satisfied(&g));
    }

    #[test]
    fn probabilistic_uses_frequency() {
        let t = toy::hospital_table();
        // Rows 2, 4, 6 all carry Flu plus row 0 (Emphysema): max freq 3/4.
        let rows = [2usize, 4, 6, 0];
        let mut buf = Vec::new();
        let g = view(&t, &rows, &mut buf);
        assert!(ProbabilisticLDiversity::new(1).is_satisfied(&g));
        assert!(!ProbabilisticLDiversity::new(2).is_satisfied(&g));
        // A perfectly balanced group of 4 distinct values passes ℓ = 4.
        let rows2 = [0usize, 1, 2, 3];
        let mut buf2 = Vec::new();
        let g2 = view(&t, &rows2, &mut buf2);
        assert!(ProbabilisticLDiversity::new(4).is_satisfied(&g2));
    }

    #[test]
    fn probabilistic_implies_distinct() {
        // Any group satisfying probabilistic ℓ also has ≥ ℓ distinct values.
        let t = toy::hospital_table();
        let rows: Vec<usize> = (0..9).collect();
        let mut buf = Vec::new();
        let g = view(&t, &rows, &mut buf);
        for l in 1..=4 {
            if ProbabilisticLDiversity::new(l).is_satisfied(&g) {
                assert!(DistinctLDiversity::new(l).is_satisfied(&g));
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(DistinctLDiversity::new(3).name(), "distinct-3-diversity");
        assert_eq!(
            ProbabilisticLDiversity::new(4).name(),
            "probabilistic-4-diversity"
        );
        assert_eq!(DistinctLDiversity::new(3).l(), 3);
        assert_eq!(ProbabilisticLDiversity::new(4).l(), 4);
    }
}
