//! The skyline (B,t)-privacy principle (Definition 2, §IV.A).
//!
//! A single (B,t) pair only protects against one adversary profile. Because
//! the worst-case disclosure risk varies *continuously* with `B` (validated
//! empirically in Fig. 3), the data publisher can cover the whole spectrum
//! of adversaries with a well-chosen finite skyline
//! `{(B_1,t_1), …, (B_r,t_r)}`: stronger adversaries (smaller `B`) are
//! allowed larger thresholds, weaker ones smaller thresholds.

use bgkanon_data::Table;
use bgkanon_knowledge::Bandwidth;

use crate::bt::BTPrivacy;
use crate::requirement::{GroupView, PrivacyRequirement};

/// A conjunction of (B,t)-privacy constraints.
#[derive(Debug, Clone)]
pub struct SkylineBTPrivacy {
    points: Vec<BTPrivacy>,
}

impl SkylineBTPrivacy {
    /// Build from pre-constructed (B,t) requirements.
    pub fn new(points: Vec<BTPrivacy>) -> Self {
        assert!(!points.is_empty(), "skyline needs at least one point");
        SkylineBTPrivacy { points }
    }

    /// Build for `table` from `(b, t)` pairs, each `b` applied uniformly
    /// over all QI attributes (the experiments' convention).
    pub fn from_pairs(table: &Table, pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "skyline needs at least one point");
        let d = table.qi_count();
        let points = pairs
            .iter()
            .map(|&(b, t)| {
                BTPrivacy::new(table, Bandwidth::uniform(b, d).expect("valid bandwidth"), t)
            })
            .collect();
        SkylineBTPrivacy { points }
    }

    /// The skyline points.
    pub fn points(&self) -> &[BTPrivacy] {
        &self.points
    }

    /// The worst slack across points: `max_i (risk_i − t_i)`. Negative when
    /// the group satisfies every point.
    pub fn worst_slack(&self, group: &GroupView<'_>) -> f64 {
        self.points
            .iter()
            .map(|p| p.group_risk(group) - p.t())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl PrivacyRequirement for SkylineBTPrivacy {
    fn name(&self) -> String {
        let inner = self
            .points
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ");
        format!("skyline[{inner}]")
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        self.points.iter().all(|p| p.is_satisfied(group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    #[test]
    fn skyline_is_conjunction() {
        let table = toy::hospital_table();
        let sky = SkylineBTPrivacy::from_pairs(&table, &[(0.2, 0.9), (0.5, 0.9)]);
        let rows = vec![0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&table, &rows, &mut buf);
        // Loose thresholds: both pass.
        assert!(sky.is_satisfied(&g));
        // Make one point impossible: conjunction fails.
        let strict = SkylineBTPrivacy::from_pairs(&table, &[(0.2, 0.9), (0.5, 0.0)]);
        assert!(!strict.is_satisfied(&g));
    }

    #[test]
    fn worst_slack_sign_matches_satisfaction() {
        let table = toy::hospital_table();
        let sky = SkylineBTPrivacy::from_pairs(&table, &[(0.3, 0.9)]);
        let rows = vec![0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&table, &rows, &mut buf);
        let slack = sky.worst_slack(&g);
        assert_eq!(slack <= 0.0, sky.is_satisfied(&g));
    }

    #[test]
    fn name_lists_points() {
        let table = toy::hospital_table();
        let sky = SkylineBTPrivacy::from_pairs(&table, &[(0.2, 0.3), (0.4, 0.1)]);
        let n = sky.name();
        assert!(n.starts_with("skyline["), "{n}");
        assert!(n.contains("t=0.3") && n.contains("t=0.1"), "{n}");
        assert_eq!(sky.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_skyline_rejected() {
        let table = toy::hospital_table();
        let _ = SkylineBTPrivacy::from_pairs(&table, &[]);
    }
}
