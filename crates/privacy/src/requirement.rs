//! The [`PrivacyRequirement`] trait and combinators.

use bgkanon_data::Table;

/// A candidate group handed to a requirement check: row indices into the
/// original table plus the group's sensitive histogram (precomputed once per
/// candidate by the partitioner).
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    /// The original microdata table.
    pub table: &'a Table,
    /// Rows of the candidate group.
    pub rows: &'a [usize],
    /// `sensitive_counts[s]` = multiplicity of sensitive value `s` among
    /// `rows`.
    pub sensitive_counts: &'a [u32],
}

impl<'a> GroupView<'a> {
    /// Build a view, computing the histogram.
    pub fn compute(table: &'a Table, rows: &'a [usize], counts_buf: &'a mut Vec<u32>) -> Self {
        *counts_buf = table.sensitive_counts_in(rows);
        GroupView {
            table,
            rows,
            sensitive_counts: counts_buf,
        }
    }

    /// Group size `k`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the candidate group is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct sensitive values in the group.
    pub fn distinct_sensitive(&self) -> usize {
        self.sensitive_counts.iter().filter(|&&c| c > 0).count()
    }

    /// Largest sensitive-value multiplicity in the group.
    pub fn max_sensitive_count(&self) -> u32 {
        self.sensitive_counts.iter().copied().max().unwrap_or(0)
    }
}

/// A predicate over candidate groups. Mondrian commits a split only when
/// every resulting group satisfies the requirement, so any conjunction of
/// these models can be enforced during anonymization.
pub trait PrivacyRequirement: Send + Sync {
    /// Human-readable name, e.g. `"(B,t)-privacy(b=0.3, t=0.25)"`.
    fn name(&self) -> String;

    /// Does `group` satisfy the requirement?
    fn is_satisfied(&self, group: &GroupView<'_>) -> bool;

    /// True when this requirement is a pure function of the group's size
    /// and sensitive histogram — i.e. [`is_satisfied`](Self::is_satisfied)
    /// never looks at the actual member rows. k-anonymity, the ℓ-diversity
    /// family and t-closeness are; (B,t)-privacy is not (it evaluates the
    /// adversary's posterior per member tuple).
    ///
    /// The incremental publishing engine uses this to revalidate retained
    /// splits from per-partition histograms without materializing row sets.
    fn counts_decidable(&self) -> bool {
        false
    }

    /// Evaluate the requirement from a group's size and sensitive histogram
    /// alone. Implementations returning `true` from
    /// [`counts_decidable`](Self::counts_decidable) **must** make this
    /// agree exactly with [`is_satisfied`](Self::is_satisfied) on any group
    /// with the same `(len, sensitive_counts)` — bit-identical incremental
    /// republication depends on it.
    ///
    /// # Panics
    ///
    /// The default implementation panics: callers must check
    /// [`counts_decidable`](Self::counts_decidable) first.
    fn is_satisfied_by_counts(&self, len: usize, sensitive_counts: &[u32]) -> bool {
        let _ = (len, sensitive_counts);
        panic!(
            "`{}` cannot be decided from counts alone; check counts_decidable() first",
            self.name()
        );
    }
}

/// Conjunction of requirements — the experiments enforce
/// `k-anonymity ∧ model` (§V).
pub struct And {
    parts: Vec<Box<dyn PrivacyRequirement>>,
}

impl And {
    /// Conjunction of `parts`; satisfied iff all parts are.
    pub fn new(parts: Vec<Box<dyn PrivacyRequirement>>) -> Self {
        assert!(!parts.is_empty(), "conjunction needs at least one part");
        And { parts }
    }

    /// Convenience for the common two-part conjunction.
    pub fn pair(
        a: impl PrivacyRequirement + 'static,
        b: impl PrivacyRequirement + 'static,
    ) -> Self {
        And::new(vec![Box::new(a), Box::new(b)])
    }
}

impl PrivacyRequirement for And {
    fn name(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        self.parts.iter().all(|p| p.is_satisfied(group))
    }

    fn counts_decidable(&self) -> bool {
        self.parts.iter().all(|p| p.counts_decidable())
    }

    fn is_satisfied_by_counts(&self, len: usize, sensitive_counts: &[u32]) -> bool {
        self.parts
            .iter()
            .all(|p| p.is_satisfied_by_counts(len, sensitive_counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    struct MinSize(usize);
    impl PrivacyRequirement for MinSize {
        fn name(&self) -> String {
            format!("min-size({})", self.0)
        }
        fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
            group.len() >= self.0
        }
    }

    #[test]
    fn group_view_statistics() {
        let t = toy::hospital_table();
        let rows = [0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.distinct_sensitive(), 3);
        assert_eq!(g.max_sensitive_count(), 1);
    }

    #[test]
    fn and_combines() {
        let t = toy::hospital_table();
        let rows = [0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&t, &rows, &mut buf);
        let both = And::pair(MinSize(2), MinSize(3));
        assert!(both.is_satisfied(&g));
        let strict = And::pair(MinSize(2), MinSize(4));
        assert!(!strict.is_satisfied(&g));
        assert_eq!(both.name(), "min-size(2) ∧ min-size(3)");
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_conjunction_rejected() {
        let _ = And::new(vec![]);
    }

    #[test]
    fn counts_decidability_propagates_through_and() {
        struct RowBound;
        impl PrivacyRequirement for RowBound {
            fn name(&self) -> String {
                "row-bound".into()
            }
            fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
                group.rows.iter().all(|&r| r < 100)
            }
        }
        let counts = And::pair(MinSize(2), MinSize(3));
        assert!(!MinSize(2).counts_decidable());
        assert!(!counts.counts_decidable());
        let with_rows = And::pair(RowBound, RowBound);
        assert!(!with_rows.counts_decidable());
    }

    #[test]
    #[should_panic(expected = "cannot be decided from counts")]
    fn counts_evaluation_of_row_requirement_panics() {
        let _ = MinSize(2).is_satisfied_by_counts(3, &[3]);
    }
}
