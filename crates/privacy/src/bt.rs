//! The (B,t)-privacy principle (Definition 1, §IV.A).
//!
//! Given the background-knowledge parameter `B` and a threshold `t`, a
//! released table satisfies (B,t)-privacy iff for every tuple the adversary
//! `Adv(B)`'s belief change — measured by a [`BeliefDistance`] between her
//! prior `Ppri(B, q)` and posterior `Ppos(B, q, T*)` — is at most `t`:
//!
//! ```text
//! max_q D[Ppri(B, q), Ppos(B, q, T*)] ≤ t
//! ```
//!
//! Posteriors are computed with the Ω-estimate, matching the paper's
//! experimental setup; the distance defaults to the paper's smoothed-JS.

use std::sync::Arc;

use bgkanon_data::Table;
use bgkanon_inference::{omega_posteriors, GroupPriors};
use bgkanon_knowledge::{Adversary, Bandwidth};
use bgkanon_stats::measure::{BeliefDistance, SmoothedJs};

use crate::requirement::{GroupView, PrivacyRequirement};

/// The (B,t)-privacy requirement for one adversary profile.
#[derive(Clone)]
pub struct BTPrivacy {
    t: f64,
    adversary: Arc<Adversary>,
    measure: Arc<dyn BeliefDistance>,
}

impl BTPrivacy {
    /// Build for `table` with bandwidth profile `bandwidth` and threshold
    /// `t`, using the paper's defaults: Epanechnikov kernel regression for
    /// the prior and smoothed-JS for the belief distance.
    ///
    /// Estimating the prior model costs `O(u²·d)` for `u` distinct QI
    /// combinations; reuse the value across candidate groups (this type is
    /// cheap to clone — the model is shared).
    pub fn new(table: &Table, bandwidth: Bandwidth, t: f64) -> Self {
        let adversary = Arc::new(Adversary::kernel(table, bandwidth));
        let measure = Arc::new(SmoothedJs::paper_default(
            table.schema().sensitive_distance(),
        ));
        Self::with_parts(adversary, measure, t)
    }

    /// Build from an existing adversary and distance measure.
    pub fn with_parts(adversary: Arc<Adversary>, measure: Arc<dyn BeliefDistance>, t: f64) -> Self {
        assert!(t >= 0.0 && t.is_finite(), "t must be non-negative, got {t}");
        BTPrivacy {
            t,
            adversary,
            measure,
        }
    }

    /// The threshold `t`.
    pub fn t(&self) -> f64 {
        self.t
    }

    /// The adversary `Adv(B)` this requirement defends against.
    pub fn adversary(&self) -> &Arc<Adversary> {
        &self.adversary
    }

    /// The belief-distance measure in use.
    pub fn measure(&self) -> &Arc<dyn BeliefDistance> {
        &self.measure
    }

    /// Worst-case disclosure risk of one candidate group: the maximum over
    /// its tuples of `D[prior, posterior]` under the Ω-estimate.
    pub fn group_risk(&self, group: &GroupView<'_>) -> f64 {
        let priors = GroupPriors::from_table_rows(group.table, group.rows, |qi| {
            self.adversary.prior(qi).clone()
        });
        let posteriors = omega_posteriors(&priors);
        posteriors
            .iter()
            .enumerate()
            .map(|(j, post)| self.measure.distance(priors.prior(j), post))
            .fold(0.0, f64::max)
    }
}

impl PrivacyRequirement for BTPrivacy {
    fn name(&self) -> String {
        match self.adversary.bandwidth() {
            Some(b) => format!("({b},t={})-privacy", self.t),
            None => format!("(?,t={})-privacy", self.t),
        }
    }

    fn is_satisfied(&self, group: &GroupView<'_>) -> bool {
        if group.is_empty() {
            return false;
        }
        self.group_risk(group) <= self.t
    }
}

impl std::fmt::Debug for BTPrivacy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTPrivacy")
            .field("t", &self.t)
            .field("adversary", &self.adversary.label())
            .field("measure", &self.measure.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    fn bt(t: f64) -> (bgkanon_data::Table, BTPrivacy) {
        let table = toy::hospital_table();
        let req = BTPrivacy::new(&table, Bandwidth::uniform(0.3, 2).unwrap(), t);
        (table, req)
    }

    #[test]
    fn loose_threshold_accepts_paper_groups() {
        let (table, req) = bt(1.0);
        for rows in toy::hospital_groups() {
            let mut buf = Vec::new();
            let g = GroupView::compute(&table, &rows, &mut buf);
            assert!(req.is_satisfied(&g), "rows {rows:?}");
        }
    }

    #[test]
    fn tight_threshold_rejects_risky_group() {
        // Group {0,1,2} spans ages 45–69 and both sexes; a knowledgeable
        // adversary gains non-zero information about Bob (row 0), so risk
        // exceeds 0 and a t = 0 requirement fails.
        let (table, req) = bt(0.0);
        let rows = vec![0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&table, &rows, &mut buf);
        assert!(req.group_risk(&g) > 0.0);
        assert!(!req.is_satisfied(&g));
    }

    #[test]
    fn risk_monotone_in_threshold() {
        let (table, req_loose) = bt(0.9);
        let req_tight = BTPrivacy::with_parts(
            Arc::clone(req_loose.adversary()),
            Arc::clone(req_loose.measure()),
            1e-6,
        );
        let rows = vec![0usize, 1, 2];
        let mut buf = Vec::new();
        let g = GroupView::compute(&table, &rows, &mut buf);
        // Same risk, different thresholds.
        assert!(req_loose.is_satisfied(&g) || !req_tight.is_satisfied(&g));
        assert_eq!(req_loose.group_risk(&g), req_tight.group_risk(&g));
    }

    #[test]
    fn whole_table_group_has_low_risk() {
        // Releasing everything in one group: the posterior is (close to) the
        // bucket distribution for everyone; risk is the distance between the
        // adversary's prior and the table-wide mix — finite and moderate.
        let (table, req) = bt(0.9);
        let rows: Vec<usize> = (0..table.len()).collect();
        let mut buf = Vec::new();
        let g = GroupView::compute(&table, &rows, &mut buf);
        let risk = req.group_risk(&g);
        assert!(risk.is_finite());
        assert!(req.is_satisfied(&g));
    }

    #[test]
    fn name_mentions_bandwidth_and_t() {
        let (_, req) = bt(0.25);
        let n = req.name();
        assert!(n.contains("0.3"), "{n}");
        assert!(n.contains("t=0.25"), "{n}");
    }

    #[test]
    #[should_panic(expected = "t must be non-negative")]
    fn negative_t_rejected() {
        let _ = bt(-0.1);
    }
}
