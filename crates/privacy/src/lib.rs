//! # bgkanon-privacy
//!
//! Privacy requirements for data publishing (§IV of the paper), expressed as
//! predicates over candidate groups that a partitioning algorithm (Mondrian)
//! can test:
//!
//! * [`KAnonymity`] — group size at least `k` (identity disclosure);
//! * [`DistinctLDiversity`] / [`ProbabilisticLDiversity`] — the ℓ-diversity
//!   family;
//! * [`TCloseness`] — EMD between the group's and the table's sensitive
//!   distribution at most `t`;
//! * [`BTPrivacy`] — the paper's Definition 1: the `Adv(B)` adversary's
//!   prior → posterior distance bounded by `t` for every tuple;
//! * [`SkylineBTPrivacy`] — Definition 2: a set of `(B_i, t_i)` constraints
//!   enforced simultaneously against adversaries of different strength.
//!
//! [`audit`] evaluates a published grouping against an arbitrary adversary —
//! the probabilistic background-knowledge attack of §V.A.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bt;
pub mod kanon;
pub mod ldiv;
pub mod requirement;
pub mod skyline;
pub mod tclose;

pub use audit::{AuditReport, AuditSession, Auditor, SharedAuditSession};
pub use bt::BTPrivacy;
pub use kanon::KAnonymity;
pub use ldiv::{DistinctLDiversity, ProbabilisticLDiversity};
pub use requirement::{And, GroupView, PrivacyRequirement};
pub use skyline::SkylineBTPrivacy;
pub use tclose::TCloseness;
