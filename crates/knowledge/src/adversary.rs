//! The parameterized adversary `Adv(B)` (§II.C–D).
//!
//! An [`Adversary`] bundles a bandwidth profile with the prior belief model
//! estimated from a table. Named constructors provide the paper's reference
//! adversaries:
//!
//! * [`Adversary::kernel`] — the general `Adv(B)` with Epanechnikov kernel
//!   regression (the paper's adversary);
//! * [`Adversary::t_closeness`] — prior = whole-table distribution for every
//!   tuple (uniform kernel at full bandwidth, §II.D);
//! * [`Adversary::ignorant`] — the ℓ-diversity "no prior" adversary whose
//!   belief is uniform over the sensitive domain. The paper points out this
//!   belief is *inconsistent with the data* whenever the sensitive attribute
//!   is skewed; it is provided for the comparative experiments.

use std::sync::Arc;

use bgkanon_data::Table;
use bgkanon_stats::Dist;

use crate::bandwidth::Bandwidth;
use crate::estimator::{KernelFamily, PriorEstimator, PriorModel};

/// An adversary with an estimated prior belief function.
///
/// ```
/// use bgkanon_knowledge::{Adversary, Bandwidth};
///
/// let table = bgkanon_data::toy::hospital_table();
/// // Adv(B = 0.3·1): moderate background knowledge on both QI attributes.
/// let adv = Adversary::kernel(&table, Bandwidth::uniform(0.3, 2).unwrap());
/// let prior = adv.prior(&table.qi(0)); // Bob: 69-year-old male
/// assert!((prior.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// // The informed prior for Emphysema exceeds the table-wide 2/9.
/// assert!(prior.get(0) > 2.0 / 9.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adversary {
    label: String,
    bandwidth: Option<Bandwidth>,
    model: AdversaryModel,
}

#[derive(Debug, Clone)]
enum AdversaryModel {
    /// Full kernel-estimated model.
    Kernel(Arc<PriorModel>),
    /// The same distribution for every tuple.
    Constant(Dist),
}

impl Adversary {
    /// The paper's `Adv(B)`: kernel-regression prior with bandwidth `B`.
    pub fn kernel(table: &Table, bandwidth: Bandwidth) -> Self {
        Self::kernel_with_family(table, bandwidth, KernelFamily::Epanechnikov)
    }

    /// `Adv(B)` with an explicit kernel family.
    pub fn kernel_with_family(table: &Table, bandwidth: Bandwidth, family: KernelFamily) -> Self {
        let label = format!("Adv({bandwidth})");
        let estimator =
            PriorEstimator::with_family(Arc::clone(table.schema()), bandwidth.clone(), family);
        let model = estimator.estimate(table);
        Adversary {
            label,
            bandwidth: Some(bandwidth),
            model: AdversaryModel::Kernel(Arc::new(model)),
        }
    }

    /// Build from an already-estimated model (avoids re-estimating when the
    /// same adversary is reused across experiments).
    pub fn from_model(label: &str, bandwidth: Bandwidth, model: Arc<PriorModel>) -> Self {
        Adversary {
            label: label.to_owned(),
            bandwidth: Some(bandwidth),
            model: AdversaryModel::Kernel(model),
        }
    }

    /// The t-closeness adversary: prior is the whole-table distribution `Q`
    /// for every individual.
    pub fn t_closeness(table: &Table) -> Self {
        let q = Dist::new(table.sensitive_distribution()).expect("table distribution is valid");
        Adversary {
            label: "Adv(t-closeness)".to_owned(),
            bandwidth: None,
            model: AdversaryModel::Constant(q),
        }
    }

    /// The ignorant (ℓ-diversity) adversary with a uniform prior. Note this
    /// prior is inconsistent with skewed data (§II.D) — the framework cannot
    /// model it via kernels; it exists for comparison experiments.
    pub fn ignorant(table: &Table) -> Self {
        let m = table.schema().sensitive_domain_size();
        Adversary {
            label: "Adv(ignorant)".to_owned(),
            bandwidth: None,
            model: AdversaryModel::Constant(Dist::uniform(m)),
        }
    }

    /// Display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The bandwidth profile, when the adversary is kernel-parameterized.
    pub fn bandwidth(&self) -> Option<&Bandwidth> {
        self.bandwidth.as_ref()
    }

    /// The estimated prior model behind this adversary — `None` for the
    /// constant-belief reference adversaries. The hub's intern table uses
    /// this to verify content identity before sharing one adversary across
    /// tenants, and to account the model's bytes to exactly one owner.
    pub fn prior_model(&self) -> Option<&Arc<PriorModel>> {
        match &self.model {
            AdversaryModel::Kernel(m) => Some(m),
            AdversaryModel::Constant(_) => None,
        }
    }

    /// Heap bytes of the adversary's owned state: label plus the constant
    /// distribution, when it carries one. The kernel prior model is **not**
    /// included — it is `Arc`-shared (possibly across tenants via the hub's
    /// intern table) and charged to its owner separately via
    /// [`PriorModel::bytes_accounted`].
    pub fn bytes_accounted(&self) -> usize {
        let model = match &self.model {
            AdversaryModel::Kernel(_) => 8,
            AdversaryModel::Constant(d) => d.len() * 8 + 32,
        };
        self.label.len() + self.bandwidth.as_ref().map_or(0, |b| b.len() * 8) + model + 64
    }

    /// Prior belief `Ppri(B, q)` for an individual with QI combination `qi`.
    pub fn prior(&self, qi: &[u32]) -> &Dist {
        match &self.model {
            AdversaryModel::Kernel(m) => m.prior_or_fallback(qi),
            AdversaryModel::Constant(d) => d,
        }
    }

    /// Prior beliefs for every row of `table`, in row order.
    pub fn priors_for_table(&self, table: &Table) -> Vec<Dist> {
        let mut qi = Vec::with_capacity(table.qi_count());
        (0..table.len())
            .map(|r| {
                table.qi_into(r, &mut qi);
                self.prior(&qi).clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    #[test]
    fn kernel_adversary_has_label_and_bandwidth() {
        let t = toy::hospital_table();
        let adv = Adversary::kernel(&t, Bandwidth::uniform(0.3, 2).unwrap());
        assert!(adv.label().starts_with("Adv(B(0.3"));
        assert_eq!(adv.bandwidth().unwrap().get(0), 0.3);
        let p = adv.prior(&t.qi(0));
        assert!((p.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn t_closeness_adversary_sees_table_distribution() {
        let t = toy::hospital_table();
        let adv = Adversary::t_closeness(&t);
        let q = Dist::new(t.sensitive_distribution()).unwrap();
        for r in 0..t.len() {
            assert!(adv.prior(&t.qi(r)).max_abs_diff(&q) < 1e-15);
        }
        assert!(adv.bandwidth().is_none());
    }

    #[test]
    fn ignorant_adversary_is_uniform() {
        let t = toy::hospital_table();
        let adv = Adversary::ignorant(&t);
        let p = adv.prior(&t.qi(3));
        assert_eq!(p.as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn priors_for_table_covers_every_row() {
        let t = toy::hospital_table();
        let adv = Adversary::kernel(&t, Bandwidth::uniform(0.4, 2).unwrap());
        let priors = adv.priors_for_table(&t);
        assert_eq!(priors.len(), t.len());
    }

    #[test]
    fn kernel_adversary_is_sharper_than_t_closeness_on_correlated_data() {
        // At Bob's QI point (69, M) the kernel adversary puts more mass on
        // Emphysema than the t-closeness adversary's 2/9.
        let t = toy::hospital_table();
        let kernel = Adversary::kernel(&t, Bandwidth::uniform(0.2, 2).unwrap());
        let tc = Adversary::t_closeness(&t);
        assert!(kernel.prior(&t.qi(0)).get(0) > tc.prior(&t.qi(0)).get(0));
    }
}
