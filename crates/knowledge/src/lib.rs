//! # bgkanon-knowledge
//!
//! Modeling adversarial background knowledge (§II of the paper).
//!
//! The adversary's prior belief is a function `Ppri : D[QI] → Σ` assigning
//! every quasi-identifier combination a distribution over the sensitive
//! domain. Following the paper, the prior is *estimated from the data to be
//! released* with Nadaraya–Watson kernel regression (Eq. 1–2): knowledge an
//! adversary could have must be consistent with the data and therefore
//! discoverable in it.
//!
//! The bandwidth vector `B = (B_1..B_d)` parameterizes how much knowledge
//! the adversary `Adv(B)` has: a small `B_i` means fine-grained knowledge of
//! how the sensitive attribute co-varies with attribute `A_i`; `B_i` equal to
//! the (normalized) domain range with a uniform kernel degrades the prior to
//! the whole-table distribution — exactly the t-closeness adversary (§II.D).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod bandwidth;
pub mod calibrate;
pub mod estimator;
pub mod mining;
pub mod persist;

pub use adversary::Adversary;
pub use bandwidth::Bandwidth;
pub use calibrate::{attribute_diagnostics, suggest_skyline};
pub use estimator::{
    FoldedPoint, FoldedTable, KernelFamily, PriorEstimator, PriorModel, SparseWeights, SupportIndex,
};
pub use mining::{mine_negative_rules, MiningConfig, NegativeRule, Pattern};
pub use persist::{load_model, load_model_str, save_model, save_model_string};
