//! Choosing bandwidth profiles: correlation diagnostics for the data
//! publisher.
//!
//! The skyline model (§IV.A) leaves the publisher a design question: *which*
//! `B` vectors deserve a skyline point? Attributes that carry a lot of
//! information about the sensitive value are the ones adversaries exploit,
//! so per-attribute **mutual information** `I(A_i; S)` (and its normalized
//! form) ranks where small bandwidths matter. [`suggest_skyline`] turns the
//! diagnostics into a concrete starter skyline.

use bgkanon_data::Table;

/// Correlation diagnostics of one QI attribute against the sensitive
/// attribute.
#[derive(Debug, Clone)]
pub struct AttributeDiagnostics {
    /// Attribute index.
    pub attribute: usize,
    /// Attribute name.
    pub name: String,
    /// Mutual information `I(A_i; S)` in bits.
    pub mutual_information: f64,
    /// `I(A_i; S) / H(S)` — the fraction of sensitive-attribute entropy the
    /// attribute explains (0 = independent, 1 = fully determining).
    pub normalized: f64,
}

/// Entropy (bits) of a count histogram.
fn entropy_bits(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Mutual information `I(A_i; S)` for every QI attribute, sorted from most
/// to least informative.
pub fn attribute_diagnostics(table: &Table) -> Vec<AttributeDiagnostics> {
    let schema = table.schema();
    let m = schema.sensitive_domain_size();
    let n = table.len() as f64;
    let h_s = entropy_bits(&table.sensitive_counts());

    let mut out: Vec<AttributeDiagnostics> = (0..table.qi_count())
        .map(|attr| {
            let r = schema.qi_attribute(attr).domain_size() as usize;
            // Joint histogram.
            let mut joint = vec![0u64; r * m];
            let mut marginal_a = vec![0u64; r];
            for row in 0..table.len() {
                let a = table.qi_value(row, attr) as usize;
                let s = table.sensitive_value(row) as usize;
                joint[a * m + s] += 1;
                marginal_a[a] += 1;
            }
            // I(A;S) = H(S) − H(S|A) = H(S) − Σ_a p(a) H(S|A=a).
            let mut h_s_given_a = 0.0;
            for a in 0..r {
                if marginal_a[a] == 0 {
                    continue;
                }
                let pa = marginal_a[a] as f64 / n;
                h_s_given_a += pa * entropy_bits(&joint[a * m..(a + 1) * m]);
            }
            let mi = (h_s - h_s_given_a).max(0.0);
            AttributeDiagnostics {
                attribute: attr,
                name: schema.qi_attribute(attr).name().to_owned(),
                mutual_information: mi,
                normalized: if h_s > 0.0 { mi / h_s } else { 0.0 },
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.mutual_information
            .partial_cmp(&a.mutual_information)
            .expect("MI is finite")
    });
    out
}

/// A starter skyline from the diagnostics: three `(b, t)` points covering
/// strong, medium and weak adversaries, with thresholds linearly relaxed
/// for stronger ones (they already know more, so they may be allowed to
/// learn a little more — Definition 2's usual shape).
///
/// `base_t` is the threshold for the weakest adversary (e.g. 0.15); the
/// returned pairs are sorted by increasing bandwidth.
pub fn suggest_skyline(table: &Table, base_t: f64) -> Vec<(f64, f64)> {
    assert!(
        base_t > 0.0 && base_t.is_finite(),
        "base threshold must be positive"
    );
    let diags = attribute_diagnostics(table);
    // How concentrated is the information? If a single attribute explains a
    // large share of H(S), strong (small-b) adversaries deserve attention:
    // push the strong point lower.
    let top = diags.first().map(|d| d.normalized).unwrap_or(0.0);
    let strong_b = if top > 0.2 { 0.15 } else { 0.2 };
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    vec![
        (strong_b, round3(base_t * 2.0)),
        (0.3, round3(base_t * 1.5)),
        (0.5, base_t),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::adult;

    #[test]
    fn informative_attributes_rank_first() {
        // In the synthetic Adult model, Education and Gender drive
        // Occupation strongly; Race barely does.
        let t = adult::generate(10_000, 42);
        let diags = attribute_diagnostics(&t);
        assert_eq!(diags.len(), 6);
        let rank = |name: &str| diags.iter().position(|d| d.name == name).unwrap();
        assert!(
            rank("Education") < rank("Race"),
            "{:?}",
            diags
                .iter()
                .map(|d| (&d.name, d.mutual_information))
                .collect::<Vec<_>>()
        );
        assert!(rank("Gender") < rank("Race"));
        for d in &diags {
            assert!(d.mutual_information >= 0.0);
            assert!((0.0..=1.0).contains(&d.normalized));
        }
    }

    #[test]
    fn independent_attribute_has_near_zero_mi() {
        // Race is sampled independently of occupation in the generator.
        let t = adult::generate(20_000, 42);
        let diags = attribute_diagnostics(&t);
        let race = diags.iter().find(|d| d.name == "Race").unwrap();
        assert!(
            race.mutual_information < 0.02,
            "race MI {}",
            race.mutual_information
        );
    }

    #[test]
    fn entropy_of_uniform_and_point() {
        assert_eq!(entropy_bits(&[0, 0]), 0.0);
        assert!((entropy_bits(&[5, 5]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy_bits(&[7, 0]), 0.0);
    }

    #[test]
    fn suggested_skyline_is_enforceable() {
        // The suggested skyline must be orderable and usable (b increasing,
        // t decreasing).
        let t = adult::generate(400, 3);
        let sky = suggest_skyline(&t, 0.2);
        assert_eq!(sky.len(), 3);
        for w in sky.windows(2) {
            assert!(w[0].0 < w[1].0, "bandwidths increase");
            assert!(
                w[0].1 >= w[1].1,
                "thresholds relax for stronger adversaries"
            );
        }
    }

    #[test]
    #[should_panic(expected = "base threshold")]
    fn invalid_base_threshold_rejected() {
        let t = adult::generate(50, 3);
        let _ = suggest_skyline(&t, 0.0);
    }
}
