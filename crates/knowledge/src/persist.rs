//! Saving and loading estimated prior models.
//!
//! Kernel estimation is the expensive step of the (B,t) pipeline
//! (Fig. 4(b)), and experiments reuse the same adversary across many
//! releases. [`save_model`]/[`load_model`] persist a [`PriorModel`] as a
//! line-oriented text file:
//!
//! ```text
//! bgkanon-prior-model v1
//! dims <d> <m>
//! table <p_1> … <p_m>
//! prior <q_1> … <q_d> <p_1> … <p_m>
//! …
//! ```
//!
//! Entries are written in sorted QI order, so files are byte-stable for a
//! given model.

use std::io::{BufRead, Write};

use bgkanon_stats::Dist;

use crate::estimator::PriorModel;

/// Magic first line of the format.
pub const MAGIC: &str = "bgkanon-prior-model v1";

/// Errors from [`load_model`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file (carries a line number and reason).
    Format {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fmt_floats(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.17e}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Write `model` to `writer`.
pub fn save_model<W: Write>(model: &PriorModel, mut writer: W) -> std::io::Result<()> {
    // Sort entries for byte-stable output.
    let mut entries: Vec<(&[u32], &Dist)> = model.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let d = entries.first().map(|(qi, _)| qi.len()).unwrap_or(0);
    let m = model.table_distribution().len();
    writeln!(writer, "{MAGIC}")?;
    writeln!(writer, "dims {d} {m}")?;
    writeln!(
        writer,
        "table {}",
        fmt_floats(model.table_distribution().as_slice())
    )?;
    for (qi, dist) in entries {
        let codes = qi.iter().map(u32::to_string).collect::<Vec<_>>().join(" ");
        writeln!(writer, "prior {codes} {}", fmt_floats(dist.as_slice()))?;
    }
    Ok(())
}

/// Read a model previously written by [`save_model`].
pub fn load_model<R: BufRead>(reader: R) -> Result<PriorModel, PersistError> {
    let mut lines = reader.lines().enumerate();
    let (_, first) = lines.next().ok_or(PersistError::Format {
        line: 1,
        reason: "empty file".into(),
    })?;
    if first?.trim() != MAGIC {
        return Err(PersistError::Format {
            line: 1,
            reason: format!("missing magic `{MAGIC}`"),
        });
    }
    let (_, dims) = lines.next().ok_or(PersistError::Format {
        line: 2,
        reason: "missing dims line".into(),
    })?;
    let dims = dims?;
    let mut it = dims.split_whitespace();
    if it.next() != Some("dims") {
        return Err(PersistError::Format {
            line: 2,
            reason: "expected `dims <d> <m>`".into(),
        });
    }
    let parse_usize = |tok: Option<&str>, line: usize| -> Result<usize, PersistError> {
        tok.and_then(|t| t.parse().ok())
            .ok_or(PersistError::Format {
                line,
                reason: "bad integer".into(),
            })
    };
    let d = parse_usize(it.next(), 2)?;
    let m = parse_usize(it.next(), 2)?;

    let parse_dist = |toks: &[&str], line: usize| -> Result<Dist, PersistError> {
        let p: Result<Vec<f64>, _> = toks.iter().map(|t| t.parse::<f64>()).collect();
        let p = p.map_err(|_| PersistError::Format {
            line,
            reason: "bad float".into(),
        })?;
        Dist::new(p).map_err(|e| PersistError::Format {
            line,
            reason: format!("invalid distribution: {e}"),
        })
    };

    let (_, table_line) = lines.next().ok_or(PersistError::Format {
        line: 3,
        reason: "missing table line".into(),
    })?;
    let table_line = table_line?;
    let toks: Vec<&str> = table_line.split_whitespace().collect();
    if toks.first() != Some(&"table") || toks.len() != m + 1 {
        return Err(PersistError::Format {
            line: 3,
            reason: format!("expected `table` with {m} probabilities"),
        });
    }
    let table_distribution = parse_dist(&toks[1..], 3)?;

    let mut priors = std::collections::HashMap::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.first() != Some(&"prior") || toks.len() != 1 + d + m {
            return Err(PersistError::Format {
                line: line_no,
                reason: format!("expected `prior` with {d} codes and {m} probabilities"),
            });
        }
        let codes: Result<Vec<u32>, _> = toks[1..=d].iter().map(|t| t.parse::<u32>()).collect();
        let codes = codes.map_err(|_| PersistError::Format {
            line: line_no,
            reason: "bad QI code".into(),
        })?;
        let dist = parse_dist(&toks[1 + d..], line_no)?;
        priors.insert(codes.into_boxed_slice(), dist);
    }
    Ok(PriorModel::from_parts(priors, table_distribution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::estimator::PriorEstimator;
    use std::sync::Arc;

    fn model() -> PriorModel {
        let t = bgkanon_data::adult::generate(300, 9);
        PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 6).unwrap())
            .estimate(&t)
    }

    #[test]
    fn roundtrip_preserves_model() {
        let m = model();
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), m.len());
        assert!(
            loaded
                .table_distribution()
                .max_abs_diff(m.table_distribution())
                < 1e-15
        );
        for (qi, p) in m.iter() {
            let q = loaded.prior(qi).expect("entry survives roundtrip");
            assert!(p.max_abs_diff(q) < 1e-15, "entry {qi:?}");
        }
    }

    #[test]
    fn output_is_byte_stable() {
        let m = model();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_model(&m, &mut a).unwrap();
        save_model(&m, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_model("not a model\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 1, .. }));
    }

    #[test]
    fn truncated_file_rejected() {
        let text = format!("{MAGIC}\ndims 2 3\n");
        assert!(load_model(text.as_bytes()).is_err());
    }

    #[test]
    fn corrupted_probability_rejected() {
        let text = format!("{MAGIC}\ndims 1 2\ntable 0.5 0.5\nprior 3 0.9 0.3\n");
        let err = load_model(text.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 4, .. }), "{err}");
    }

    #[test]
    fn wrong_arity_rejected() {
        let text = format!("{MAGIC}\ndims 2 2\ntable 0.5 0.5\nprior 3 0.9 0.1\n");
        assert!(load_model(text.as_bytes()).is_err());
    }
}
