//! Saving and loading estimated prior models.
//!
//! Kernel estimation is the expensive step of the (B,t) pipeline
//! (Fig. 4(b)), and experiments reuse the same adversary across many
//! releases. [`save_model`]/[`load_model`] persist a [`PriorModel`] as a
//! line-oriented text file. Models that carry their folded estimation table
//! (anything built by `PriorEstimator::estimate*`) are written in the **v2**
//! format, which also records the bandwidth, kernel family and folded
//! points — so a reloaded model is [refreshable](PriorModel::refresh) under
//! table deltas *without re-folding*:
//!
//! ```text
//! bgkanon-prior-model v2
//! dims <d> <m>
//! bandwidth <b_1> … <b_d>
//! family <epanechnikov|uniform|triangular>
//! point <q_1> … <q_d> <c_1> … <c_m>
//! …
//! prior <q_1> … <q_d> <p_1> … <p_m>
//! …
//! ```
//!
//! Bare [`PriorModel::from_parts`] models fall back to the legacy **v1**
//! format (`table` line + `prior` lines), which [`load_model`] still reads.
//! Entries are written in sorted QI order, so files are byte-stable for a
//! given model.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use bgkanon_stats::Dist;

use crate::bandwidth::Bandwidth;
use crate::estimator::{FoldedTable, KernelFamily, PriorModel};

/// Magic first line of the legacy (prior-only) format.
pub const MAGIC: &str = "bgkanon-prior-model v1";

/// Magic first line of the refreshable format.
pub const MAGIC_V2: &str = "bgkanon-prior-model v2";

/// Errors from [`load_model`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file (carries a line number and reason).
    Format {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fmt_floats(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.17e}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn fmt_codes(qi: &[u32]) -> String {
    qi.iter().map(u32::to_string).collect::<Vec<_>>().join(" ")
}

/// Write `model` to `writer` — v2 when the model carries its folded table
/// (refreshable after reload), v1 otherwise.
pub fn save_model<W: Write>(model: &PriorModel, mut writer: W) -> std::io::Result<()> {
    // Sort entries for byte-stable output.
    let mut entries: Vec<(&[u32], &Dist)> = model.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let m = model.table_distribution().len();
    if let (Some(folded), Some(bandwidth)) = (model.folded(), model.bandwidth()) {
        let d = folded.qi_count();
        writeln!(writer, "{MAGIC_V2}")?;
        writeln!(writer, "dims {d} {m}")?;
        writeln!(writer, "bandwidth {}", fmt_floats(bandwidth.as_slice()))?;
        writeln!(writer, "family {}", model.family().as_str())?;
        for p in folded.points() {
            writeln!(
                writer,
                "point {} {}",
                fmt_codes(p.qi()),
                p.sensitive_counts()
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            )?;
        }
        for (qi, dist) in entries {
            writeln!(
                writer,
                "prior {} {}",
                fmt_codes(qi),
                fmt_floats(dist.as_slice())
            )?;
        }
    } else {
        let d = entries.first().map(|(qi, _)| qi.len()).unwrap_or(0);
        writeln!(writer, "{MAGIC}")?;
        writeln!(writer, "dims {d} {m}")?;
        writeln!(
            writer,
            "table {}",
            fmt_floats(model.table_distribution().as_slice())
        )?;
        for (qi, dist) in entries {
            writeln!(
                writer,
                "prior {} {}",
                fmt_codes(qi),
                fmt_floats(dist.as_slice())
            )?;
        }
    }
    Ok(())
}

/// Serialize `model` to an owned string in the same format [`save_model`]
/// writes. This is the embeddable flavor: containers that persist a model
/// *inside* a larger versioned file (`bgkanon-core`'s tenant checkpoints)
/// splice these lines into their own stream instead of owning a whole file.
pub fn save_model_string(model: &PriorModel) -> String {
    let mut buf = Vec::new();
    save_model(model, &mut buf).expect("writing to an in-memory buffer cannot fail");
    String::from_utf8(buf).expect("persist output is ASCII")
}

/// Parse a model from text previously produced by [`save_model`] /
/// [`save_model_string`] — the embeddable counterpart of [`load_model`],
/// for callers that already hold the model's lines carved out of a larger
/// file. Line numbers in errors are relative to `text`.
pub fn load_model_str(text: &str) -> Result<PriorModel, PersistError> {
    load_model(text.as_bytes())
}

fn parse_dist(toks: &[&str], line: usize) -> Result<Dist, PersistError> {
    let p: Result<Vec<f64>, _> = toks.iter().map(|t| t.parse::<f64>()).collect();
    let p = p.map_err(|_| PersistError::Format {
        line,
        reason: "bad float".into(),
    })?;
    Dist::new(p).map_err(|e| PersistError::Format {
        line,
        reason: format!("invalid distribution: {e}"),
    })
}

fn parse_codes(toks: &[&str], line: usize) -> Result<Vec<u32>, PersistError> {
    let codes: Result<Vec<u32>, _> = toks.iter().map(|t| t.parse::<u32>()).collect();
    codes.map_err(|_| PersistError::Format {
        line,
        reason: "bad QI code".into(),
    })
}

/// Read a model previously written by [`save_model`] (either format; a v2
/// file yields a refreshable model carrying its folded table, bandwidth and
/// kernel family).
pub fn load_model<R: BufRead>(reader: R) -> Result<PriorModel, PersistError> {
    let mut lines = reader.lines().enumerate();
    let (_, first) = lines.next().ok_or(PersistError::Format {
        line: 1,
        reason: "empty file".into(),
    })?;
    let first = first?;
    let v2 = match first.trim() {
        s if s == MAGIC => false,
        s if s == MAGIC_V2 => true,
        _ => {
            return Err(PersistError::Format {
                line: 1,
                reason: format!("missing magic `{MAGIC}` or `{MAGIC_V2}`"),
            })
        }
    };
    let (_, dims) = lines.next().ok_or(PersistError::Format {
        line: 2,
        reason: "missing dims line".into(),
    })?;
    let dims = dims?;
    let mut it = dims.split_whitespace();
    if it.next() != Some("dims") {
        return Err(PersistError::Format {
            line: 2,
            reason: "expected `dims <d> <m>`".into(),
        });
    }
    let parse_usize = |tok: Option<&str>, line: usize| -> Result<usize, PersistError> {
        tok.and_then(|t| t.parse().ok())
            .ok_or(PersistError::Format {
                line,
                reason: "bad integer".into(),
            })
    };
    let d = parse_usize(it.next(), 2)?;
    let m = parse_usize(it.next(), 2)?;

    if v2 {
        return load_v2_body(lines, d, m);
    }

    let (_, table_line) = lines.next().ok_or(PersistError::Format {
        line: 3,
        reason: "missing table line".into(),
    })?;
    let table_line = table_line?;
    let toks: Vec<&str> = table_line.split_whitespace().collect();
    if toks.first() != Some(&"table") || toks.len() != m + 1 {
        return Err(PersistError::Format {
            line: 3,
            reason: format!("expected `table` with {m} probabilities"),
        });
    }
    let table_distribution = parse_dist(&toks[1..], 3)?;

    let mut priors = HashMap::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.first() != Some(&"prior") || toks.len() != 1 + d + m {
            return Err(PersistError::Format {
                line: line_no,
                reason: format!("expected `prior` with {d} codes and {m} probabilities"),
            });
        }
        let codes = parse_codes(&toks[1..=d], line_no)?;
        let dist = parse_dist(&toks[1 + d..], line_no)?;
        priors.insert(codes.into_boxed_slice(), dist);
    }
    Ok(PriorModel::from_parts(priors, table_distribution))
}

/// Parse everything after the `dims` line of a v2 file.
fn load_v2_body<I>(mut lines: I, d: usize, m: usize) -> Result<PriorModel, PersistError>
where
    I: Iterator<Item = (usize, std::io::Result<String>)>,
{
    let (_, bw_line) = lines.next().ok_or(PersistError::Format {
        line: 3,
        reason: "missing bandwidth line".into(),
    })?;
    let bw_line = bw_line?;
    let toks: Vec<&str> = bw_line.split_whitespace().collect();
    if toks.first() != Some(&"bandwidth") || toks.len() != d + 1 {
        return Err(PersistError::Format {
            line: 3,
            reason: format!("expected `bandwidth` with {d} components"),
        });
    }
    let b: Result<Vec<f64>, _> = toks[1..].iter().map(|t| t.parse::<f64>()).collect();
    let b = b.map_err(|_| PersistError::Format {
        line: 3,
        reason: "bad float".into(),
    })?;
    let bandwidth = Bandwidth::new(b).map_err(|e| PersistError::Format {
        line: 3,
        reason: format!("invalid bandwidth: {e}"),
    })?;

    let (_, fam_line) = lines.next().ok_or(PersistError::Format {
        line: 4,
        reason: "missing family line".into(),
    })?;
    let fam_line = fam_line?;
    let toks: Vec<&str> = fam_line.split_whitespace().collect();
    if toks.len() != 2 || toks[0] != "family" {
        return Err(PersistError::Format {
            line: 4,
            reason: "expected `family <name>`".into(),
        });
    }
    let family: KernelFamily = toks[1]
        .parse()
        .map_err(|e| PersistError::Format { line: 4, reason: e })?;

    let mut points: Vec<(Box<[u32]>, Vec<u32>)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut priors = HashMap::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.first().copied() {
            Some("point") => {
                if toks.len() != 1 + d + m {
                    return Err(PersistError::Format {
                        line: line_no,
                        reason: format!("expected `point` with {d} codes and {m} counts"),
                    });
                }
                let codes = parse_codes(&toks[1..=d], line_no)?;
                let counts: Result<Vec<u32>, _> =
                    toks[1 + d..].iter().map(|t| t.parse::<u32>()).collect();
                let counts = counts.map_err(|_| PersistError::Format {
                    line: line_no,
                    reason: "bad count".into(),
                })?;
                if counts.iter().all(|&c| c == 0) {
                    return Err(PersistError::Format {
                        line: line_no,
                        reason: "folded point with zero rows".into(),
                    });
                }
                let codes = codes.into_boxed_slice();
                if !seen.insert(codes.clone()) {
                    return Err(PersistError::Format {
                        line: line_no,
                        reason: "duplicate folded point".into(),
                    });
                }
                points.push((codes, counts));
            }
            Some("prior") => {
                if toks.len() != 1 + d + m {
                    return Err(PersistError::Format {
                        line: line_no,
                        reason: format!("expected `prior` with {d} codes and {m} probabilities"),
                    });
                }
                let codes = parse_codes(&toks[1..=d], line_no)?;
                let dist = parse_dist(&toks[1 + d..], line_no)?;
                priors.insert(codes.into_boxed_slice(), dist);
            }
            _ => {
                return Err(PersistError::Format {
                    line: line_no,
                    reason: "expected `point` or `prior`".into(),
                })
            }
        }
    }
    if points.is_empty() {
        return Err(PersistError::Format {
            line: 5,
            reason: "v2 model has no folded points".into(),
        });
    }
    let folded = FoldedTable::from_points(d, m, points);
    Ok(PriorModel::from_parts_folded(
        priors, folded, bandwidth, family,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::estimator::PriorEstimator;
    use bgkanon_data::DeltaBuilder;
    use std::sync::Arc;

    fn model() -> PriorModel {
        let t = bgkanon_data::adult::generate(300, 9);
        PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 6).unwrap())
            .estimate(&t)
    }

    #[test]
    fn roundtrip_preserves_model() {
        let m = model();
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), m.len());
        assert!(
            loaded
                .table_distribution()
                .max_abs_diff(m.table_distribution())
                < 1e-15
        );
        for (qi, p) in m.iter() {
            let q = loaded.prior(qi).expect("entry survives roundtrip");
            assert!(p.max_abs_diff(q) < 1e-15, "entry {qi:?}");
        }
    }

    #[test]
    fn v2_roundtrip_preserves_fold_and_provenance() {
        let m = model();
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        assert!(buf.starts_with(MAGIC_V2.as_bytes()));
        let loaded = load_model(buf.as_slice()).unwrap();
        assert!(loaded.is_refreshable());
        assert_eq!(loaded.bandwidth(), m.bandwidth());
        assert_eq!(loaded.family(), m.family());
        let (a, b) = (m.folded().unwrap(), loaded.folded().unwrap());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.rows(), b.rows());
        for (pa, pb) in a.points().zip(b.points()) {
            assert_eq!(pa.qi(), pb.qi());
            assert_eq!(pa.count(), pb.count());
            assert_eq!(pa.sensitive_counts(), pb.sensitive_counts());
        }
        // Exact bit equality of every prior and the table distribution.
        for (qi, p) in m.iter() {
            let q = loaded.prior(qi).unwrap();
            for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (x, y) in m
            .table_distribution()
            .as_slice()
            .iter()
            .zip(loaded.table_distribution().as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn reloaded_model_refreshes_without_refolding() {
        // The round-trip contract of the sparse engine: save → load →
        // refresh(delta) must equal a from-scratch estimate of the
        // post-delta table, bit for bit.
        let t = bgkanon_data::adult::generate(250, 4);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.25, t.qi_count()).unwrap(),
        );
        let m = est.estimate(&t);
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let mut loaded = load_model(buf.as_slice()).unwrap();
        // The persisted provenance is enough to rebuild the estimator.
        let est2 = PriorEstimator::with_family(
            Arc::clone(t.schema()),
            loaded.bandwidth().unwrap().clone(),
            loaded.family(),
        );

        let donors = bgkanon_data::adult::generate(6, 123);
        let mut b = DeltaBuilder::new(Arc::clone(t.schema()));
        b.delete(10).delete(42).delete(200);
        for r in 0..6 {
            b.insert_codes(&donors.qi(r), donors.sensitive_value(r))
                .unwrap();
        }
        let delta = b.build();
        loaded.refresh(&est2, &t, &delta);

        let fresh = est.estimate(&t.apply_delta(&delta).unwrap());
        assert_eq!(loaded.len(), fresh.len());
        for (qi, p) in fresh.iter() {
            let q = loaded.prior(qi).unwrap();
            for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "drift at {qi:?}");
            }
        }
    }

    #[test]
    fn string_helpers_match_writer_api() {
        // The embeddable flavor must be byte-identical to the writer API
        // (checkpoint files splice these lines verbatim) and round-trip to
        // an equal, refreshable model.
        let m = model();
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let text = save_model_string(&m);
        assert_eq!(text.as_bytes(), buf.as_slice());
        let loaded = load_model_str(&text).unwrap();
        assert!(loaded.is_refreshable());
        assert_eq!(loaded.len(), m.len());
        for (qi, p) in m.iter() {
            let q = loaded.prior(qi).unwrap();
            for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let m = model();
        let bare = PriorModel::from_parts(
            m.iter().map(|(qi, p)| (qi.into(), p.clone())).collect(),
            m.table_distribution().clone(),
        );
        let mut buf = Vec::new();
        save_model(&bare, &mut buf).unwrap();
        assert!(buf.starts_with(MAGIC.as_bytes()));
        let loaded = load_model(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), bare.len());
        assert!(!loaded.is_refreshable());
    }

    #[test]
    fn output_is_byte_stable() {
        let m = model();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_model(&m, &mut a).unwrap();
        save_model(&m, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_model("not a model\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 1, .. }));
    }

    #[test]
    fn truncated_file_rejected() {
        let text = format!("{MAGIC}\ndims 2 3\n");
        assert!(load_model(text.as_bytes()).is_err());
        let text = format!("{MAGIC_V2}\ndims 2 3\n");
        assert!(load_model(text.as_bytes()).is_err());
    }

    #[test]
    fn corrupted_probability_rejected() {
        let text = format!("{MAGIC}\ndims 1 2\ntable 0.5 0.5\nprior 3 0.9 0.3\n");
        let err = load_model(text.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 4, .. }), "{err}");
    }

    #[test]
    fn wrong_arity_rejected() {
        let text = format!("{MAGIC}\ndims 2 2\ntable 0.5 0.5\nprior 3 0.9 0.1\n");
        assert!(load_model(text.as_bytes()).is_err());
    }

    #[test]
    fn v2_malformed_lines_rejected() {
        let head = format!("{MAGIC_V2}\ndims 1 2\nbandwidth 2.5e-1\nfamily epanechnikov\n");
        // Unknown family.
        assert!(load_model(
            format!("{MAGIC_V2}\ndims 1 2\nbandwidth 2.5e-1\nfamily gaussian\npoint 0 1 0\n")
                .as_bytes()
        )
        .is_err());
        // Zero-row point.
        assert!(load_model(format!("{head}point 0 0 0\n").as_bytes()).is_err());
        // Duplicate point.
        assert!(load_model(format!("{head}point 0 1 0\npoint 0 0 1\n").as_bytes()).is_err());
        // Stray keyword.
        assert!(load_model(format!("{head}table 0.5 0.5\n").as_bytes()).is_err());
        // No points at all.
        assert!(load_model(head.as_bytes()).is_err());
        // Minimal valid file.
        let ok = load_model(format!("{head}point 0 1 1\nprior 0 5e-1 5e-1\n").as_bytes()).unwrap();
        assert!(ok.is_refreshable());
        assert_eq!(ok.folded().unwrap().rows(), 2);
    }
}
