//! Nadaraya–Watson kernel regression estimation of the prior belief
//! function (Eq. 1–2 of the paper), built around **compact kernel support**.
//!
//! For a QI point `q = (q_1..q_d)` the estimated prior is
//!
//! ```text
//!            Σ_j P(t_j) · Π_i K_i(d_i(q_i, t_j[A_i]))
//! P̂pri(q) = ─────────────────────────────────────────
//!            Σ_j        Π_i K_i(d_i(q_i, t_j[A_i]))
//! ```
//!
//! where `P(t_j)` is the point-mass representation of tuple `t_j` and `d_i`
//! the normalized semantic distance of attribute `A_i`. Implementation
//! notes:
//!
//! * every shipped kernel family has compact support, so each per-attribute
//!   `r × r` weight table is stored **sparse** ([`SparseWeights`], CSR: per
//!   value `a` only the values `b` with nonzero weight);
//! * rows with identical QI combinations are folded into a reusable
//!   [`FoldedTable`] (weight = multiplicity), and a [`SupportIndex`] over
//!   the folded points (lexicographically sorted order + per-attribute
//!   inverted postings) lets a query enumerate **only the candidates inside
//!   the product-kernel support** — seeded from the most selective
//!   attribute — instead of scanning all `u` distinct points;
//! * candidates are accumulated in ascending sorted-point order, so the
//!   sparse result is **bit-identical** to the dense all-pairs reference
//!   ([`PriorEstimator::estimate_reference`], also selected by
//!   [`Parallelism::Serial`]), which `tests/tests/estimation.rs`
//!   property-tests across kernel families and bandwidths;
//! * compact support also makes the model **session-refreshable**: a
//!   [`Delta`] can only perturb priors inside the kernel neighborhood of
//!   the changed points, so [`PriorEstimator::refresh`] recomputes exactly
//!   that dirty neighborhood and is bit-identical to a from-scratch
//!   estimate of the post-delta table.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bgkanon_data::{Delta, Parallelism, Schema, Table};
use bgkanon_stats::{Dist, Kernel};

use crate::bandwidth::Bandwidth;

/// Which kernel family to instantiate per attribute. The paper uses
/// Epanechnikov throughout; Uniform recovers the §II.D special cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelFamily {
    /// The paper's default.
    #[default]
    Epanechnikov,
    /// Box kernel.
    Uniform,
    /// Triangular kernel.
    Triangular,
}

impl KernelFamily {
    /// Instantiate a kernel of this family with bandwidth `b`.
    pub fn kernel(self, b: f64) -> Kernel {
        match self {
            KernelFamily::Epanechnikov => Kernel::epanechnikov(b),
            KernelFamily::Uniform => Kernel::uniform(b),
            KernelFamily::Triangular => Kernel::triangular(b),
        }
    }

    /// Stable lowercase name (used by the persistence format).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelFamily::Epanechnikov => "epanechnikov",
            KernelFamily::Uniform => "uniform",
            KernelFamily::Triangular => "triangular",
        }
    }
}

impl std::str::FromStr for KernelFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "epanechnikov" => Ok(KernelFamily::Epanechnikov),
            "uniform" => Ok(KernelFamily::Uniform),
            "triangular" => Ok(KernelFamily::Triangular),
            other => Err(format!("unknown kernel family `{other}`")),
        }
    }
}

/// One attribute's kernel weight table `W[a][b] = K(d(a, b))` in CSR form:
/// per value `a`, only the values `b` inside the kernel support (nonzero
/// weight) are stored. With the bench's bandwidth 0.25 the overwhelming
/// majority of the dense `r × r` table is exactly zero — the sparsity the
/// whole estimation engine is built on.
#[derive(Debug, Clone)]
pub struct SparseWeights {
    size: usize,
    /// `row_ptr[a]..row_ptr[a + 1]` slices `cols`/`weights` for value `a`.
    row_ptr: Vec<usize>,
    /// Support values per row, ascending.
    cols: Vec<u32>,
    /// Kernel weight per stored `(a, b)` pair.
    weights: Vec<f64>,
    /// True when every row's support is a contiguous code range (always the
    /// case for numeric attributes), enabling O(1) random access.
    contiguous: bool,
}

impl SparseWeights {
    fn build(kernel: &Kernel, dist: &bgkanon_data::distance::DistanceMatrix) -> Self {
        let r = dist.size();
        let mut row_ptr = Vec::with_capacity(r + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut weights = Vec::new();
        let mut contiguous = true;
        for a in 0..r {
            let start = cols.len();
            for (b, &d) in dist.row(a as u32).iter().enumerate() {
                let w = kernel.weight(d);
                if w > 0.0 {
                    cols.push(b as u32);
                    weights.push(w);
                }
            }
            // The diagonal distance is 0 and K(0) > 0 for every family, so
            // no row is ever empty.
            debug_assert!(cols.len() > start, "support row {a} is empty");
            let len = cols.len() - start;
            contiguous &= (cols[cols.len() - 1] - cols[start]) as usize + 1 == len;
            row_ptr.push(cols.len());
        }
        SparseWeights {
            size: r,
            row_ptr,
            cols,
            weights,
            contiguous,
        }
    }

    /// Domain size `r`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The support list of value `a`: every `b` with `W[a][b] > 0`,
    /// ascending.
    pub fn support(&self, a: u32) -> &[u32] {
        &self.cols[self.row_ptr[a as usize]..self.row_ptr[a as usize + 1]]
    }

    /// Kernel weight `W[a][b]`, 0.0 outside the support.
    #[inline]
    pub fn weight(&self, a: u32, b: u32) -> f64 {
        let lo = self.row_ptr[a as usize];
        let row = &self.cols[lo..self.row_ptr[a as usize + 1]];
        if self.contiguous {
            let first = row[0];
            if b >= first {
                let off = (b - first) as usize;
                if off < row.len() {
                    return self.weights[lo + off];
                }
            }
            0.0
        } else {
            match row.binary_search(&b) {
                Ok(i) => self.weights[lo + i],
                Err(_) => 0.0,
            }
        }
    }

    /// Number of stored (nonzero) entries.
    pub fn nonzero(&self) -> usize {
        self.cols.len()
    }

    /// Fraction of the dense `r × r` table that is nonzero — the
    /// support-density diagnostic ([`Kernel::support_density`] over the
    /// attribute's distance matrix gives the same number).
    pub fn density(&self) -> f64 {
        self.cols.len() as f64 / (self.size * self.size) as f64
    }

    /// True when every row's support is one contiguous code range.
    pub fn is_contiguous(&self) -> bool {
        self.contiguous
    }
}

/// A borrowed view of one distinct QI combination: its codes, multiplicity
/// and sensitive histogram (the [`FoldedTable`] stores all points in flat
/// contiguous arrays for cache-friendly scans; this view is how they are
/// read back).
#[derive(Debug, Clone, Copy)]
pub struct FoldedPoint<'a> {
    qi: &'a [u32],
    count: u32,
    sensitive_counts: &'a [u32],
}

impl<'a> FoldedPoint<'a> {
    /// The QI code combination.
    pub fn qi(&self) -> &'a [u32] {
        self.qi
    }

    /// Number of table rows folded into this point.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Per-sensitive-value counts among those rows (sums to
    /// [`count`](Self::count)).
    pub fn sensitive_counts(&self) -> &'a [u32] {
        self.sensitive_counts
    }
}

/// The distinct-QI folding of a table: one point per distinct QI
/// combination, **sorted lexicographically**, plus the whole-table sensitive
/// totals. Storage is flat and row-major (codes, multiplicities and
/// histograms in three contiguous arrays), so the accumulation hot loops
/// scan linearly instead of chasing per-point allocations. This is the
/// substrate every estimation path shares — fold once, then estimate, query
/// ([`PriorEstimator::estimate_many`]) and refresh against it without
/// re-scanning the table.
///
/// ```
/// use bgkanon_knowledge::FoldedTable;
///
/// let table = bgkanon_data::toy::hospital_table();
/// let folded = FoldedTable::new(&table);
/// assert_eq!(folded.rows(), table.len());
/// assert_eq!(folded.len(), table.group_by_qi().len());
/// // Points are sorted lexicographically by QI codes.
/// let qis: Vec<&[u32]> = folded.points().map(|p| p.qi()).collect();
/// assert!(qis.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct FoldedTable {
    qi_count: usize,
    m: usize,
    rows: usize,
    sensitive_totals: Vec<u64>,
    /// `u × d` row-major QI codes, rows sorted lexicographically.
    qi: Vec<u32>,
    /// Multiplicity per point.
    counts: Vec<u32>,
    /// `u × m` row-major sensitive histograms.
    hists: Vec<u32>,
}

impl FoldedTable {
    /// Fold `table` by distinct QI combination. The rows are ordered with
    /// one LSD counting-sort radix pass per attribute
    /// ([`Table::qi_sorted_rows`] — columnar tables scan each code vector
    /// contiguously), then equal-QI runs of the sorted order collapse into
    /// points; the points come out already in lexicographic order, with no
    /// hash map and no per-point allocation.
    pub fn new(table: &Table) -> Self {
        let d = table.qi_count();
        let m = table.schema().sensitive_domain_size();
        let n = table.len();
        let sens = table.sensitive_col();
        let mut sensitive_totals = vec![0u64; m];
        for &s in sens {
            sensitive_totals[s as usize] += 1;
        }
        let order = table.qi_sorted_rows();
        let cols: Vec<_> = (0..d).map(|a| table.qi_col(a)).collect();
        let mut qi = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut hists: Vec<u32> = Vec::new();
        let mut cur = vec![0u32; d];
        let mut i = 0usize;
        while i < n {
            let r0 = order[i] as usize;
            for (v, c) in cur.iter_mut().zip(&cols) {
                *v = c.get(r0);
            }
            let base = hists.len();
            hists.resize(base + m, 0);
            let mut count = 0u32;
            while i < n {
                let r = order[i] as usize;
                if count > 0 && cur.iter().zip(&cols).any(|(&v, c)| c.get(r) != v) {
                    break;
                }
                hists[base + sens[r] as usize] += 1;
                count += 1;
                i += 1;
            }
            qi.extend_from_slice(&cur);
            counts.push(count);
        }
        FoldedTable {
            qi_count: d,
            m,
            rows: table.len(),
            sensitive_totals,
            qi,
            counts,
            hists,
        }
    }

    /// Rebuild from raw `(codes, histogram)` points (the persistence
    /// layer's path). Points are sorted; multiplicities and totals are
    /// derived from the histograms.
    pub(crate) fn from_points(
        qi_count: usize,
        m: usize,
        mut points: Vec<(Box<[u32]>, Vec<u32>)>,
    ) -> Self {
        points.sort_by(|a, b| a.0.cmp(&b.0));
        let u = points.len();
        let mut sensitive_totals = vec![0u64; m];
        let mut rows = 0usize;
        let mut qi = Vec::with_capacity(u * qi_count);
        let mut counts = Vec::with_capacity(u);
        let mut hists = Vec::with_capacity(u * m);
        for (codes, hist) in &points {
            qi.extend_from_slice(codes);
            hists.extend_from_slice(hist);
            let count: u32 = hist.iter().sum();
            rows += count as usize;
            counts.push(count);
            for (s, &c) in hist.iter().enumerate() {
                sensitive_totals[s] += u64::from(c);
            }
        }
        FoldedTable {
            qi_count,
            m,
            rows,
            sensitive_totals,
            qi,
            counts,
            hists,
        }
    }

    /// Number of distinct QI points `u`.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no rows were folded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of folded rows `n`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of QI attributes `d`.
    pub fn qi_count(&self) -> usize {
        self.qi_count
    }

    /// Sensitive domain size `m`.
    pub fn sensitive_domain_size(&self) -> usize {
        self.m
    }

    /// Heap bytes resident in this fold's flat arrays — the accounting
    /// hook the serving hub's memory budget rolls up per tenant. A
    /// deterministic owned-payload estimate, not an allocator-exact RSS.
    pub fn bytes_accounted(&self) -> usize {
        self.sensitive_totals.len() * 8
            + self.qi.len() * 4
            + self.counts.len() * 4
            + self.hists.len() * 4
            + 64
    }

    /// FNV-1a content hash over every field of the fold. Two tables with
    /// identical row content fold to identical sorted arrays, so this hash
    /// (plus bandwidth + kernel-family provenance) is the intern key under
    /// which the hub shares one estimated `P̂pri` model across tenants
    /// holding the same background knowledge. Collisions are guarded by
    /// [`content_eq`](Self::content_eq) before any sharing happens.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.qi_count as u64);
        eat(self.m as u64);
        eat(self.rows as u64);
        for &v in &self.sensitive_totals {
            eat(v);
        }
        for &v in &self.qi {
            eat(u64::from(v));
        }
        for &v in &self.counts {
            eat(u64::from(v));
        }
        for &v in &self.hists {
            eat(u64::from(v));
        }
        h
    }

    /// Field-wise equality of two folds — the collision guard behind
    /// [`content_hash`](Self::content_hash): the hub only shares a model
    /// across tenants when their folds are *equal*, never merely
    /// hash-equal.
    pub fn content_eq(&self, other: &FoldedTable) -> bool {
        self.qi_count == other.qi_count
            && self.m == other.m
            && self.rows == other.rows
            && self.sensitive_totals == other.sensitive_totals
            && self.qi == other.qi
            && self.counts == other.counts
            && self.hists == other.hists
    }

    /// QI codes of the point at sorted index `i`.
    #[inline]
    fn point_qi(&self, i: usize) -> &[u32] {
        &self.qi[i * self.qi_count..(i + 1) * self.qi_count]
    }

    /// Sensitive histogram of the point at sorted index `i`.
    #[inline]
    fn point_hist(&self, i: usize) -> &[u32] {
        &self.hists[i * self.m..(i + 1) * self.m]
    }

    /// The points in lexicographic QI order.
    pub fn points(&self) -> impl Iterator<Item = FoldedPoint<'_>> {
        (0..self.len()).map(|i| self.point(i))
    }

    /// Point at sorted index `i`.
    pub fn point(&self, i: usize) -> FoldedPoint<'_> {
        FoldedPoint {
            qi: self.point_qi(i),
            count: self.counts[i],
            sensitive_counts: self.point_hist(i),
        }
    }

    /// Index of the point with QI combination `qi`, if present.
    pub fn find(&self, qi: &[u32]) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.point_qi(mid).cmp(qi) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// The whole-table sensitive distribution `Q` — bit-identical to
    /// [`Table::sensitive_distribution`] of the folded table.
    pub fn table_distribution(&self) -> Dist {
        let n = self.rows as f64;
        Dist::new(
            self.sensitive_totals
                .iter()
                .map(|&c| c as f64 / n)
                .collect(),
        )
        .expect("table distribution is valid")
    }

    /// Evolve the fold by one [`Delta`]. `table` must be the **pre-delta**
    /// table this fold currently represents (deletes are row indices into
    /// it). Returns the distinct QI combinations whose multiplicity or
    /// histogram actually changed — the seed of the dirty kernel
    /// neighborhood [`PriorEstimator::refresh`] recomputes.
    ///
    /// # Panics
    ///
    /// Panics when `table` is out of sync with the fold (different row
    /// count, or a delete that the fold cannot account for), or when the
    /// delta would empty the table ([`Table::apply_delta`] rejects the same
    /// delta with [`DataError::EmptyTable`](bgkanon_data::DataError) — an
    /// empty table has no sensitive distribution to estimate). The check
    /// runs before any mutation, so a panicking fold is left intact.
    pub fn apply_delta(&mut self, table: &Table, delta: &Delta) -> Vec<Box<[u32]>> {
        assert_eq!(
            table.len(),
            self.rows,
            "folded table is out of sync with the pre-delta table"
        );
        assert!(
            self.rows + delta.insert_count() > delta.delete_count(),
            "delta would empty the table"
        );
        // Net change per touched QI combination.
        let mut touched: BTreeMap<Box<[u32]>, Vec<i64>> = BTreeMap::new();
        for &row in delta.deletes() {
            assert!(row < table.len(), "delete index {row} out of range");
            let hist = touched
                .entry(table.qi(row).into())
                .or_insert_with(|| vec![0i64; self.m]);
            hist[table.sensitive_value(row) as usize] -= 1;
        }
        for i in 0..delta.insert_count() {
            let hist = touched
                .entry(delta.insert_qi(i).into())
                .or_insert_with(|| vec![0i64; self.m]);
            hist[delta.insert_sensitive(i) as usize] += 1;
        }
        touched.retain(|_, hist| hist.iter().any(|&d| d != 0));
        if touched.is_empty() {
            return Vec::new();
        }

        // Merge the (sorted) net changes into the sorted flat arrays.
        let d = self.qi_count;
        let m = self.m;
        let u_old = self.counts.len();
        let old_qi = std::mem::replace(
            &mut self.qi,
            Vec::with_capacity((u_old + touched.len()) * d),
        );
        let old_counts =
            std::mem::replace(&mut self.counts, Vec::with_capacity(u_old + touched.len()));
        let old_hists = std::mem::replace(
            &mut self.hists,
            Vec::with_capacity((u_old + touched.len()) * m),
        );
        let mut scratch = vec![0u32; m];
        let mut changes = touched.iter().peekable();
        for i in 0..u_old {
            let pq = &old_qi[i * d..(i + 1) * d];
            while let Some((qi, _)) = changes.peek() {
                if qi.as_ref() < pq {
                    let (qi, hist) = changes.next().expect("peeked");
                    self.insert_fresh(qi, hist);
                } else {
                    break;
                }
            }
            match changes.peek() {
                Some((qi, _)) if qi.as_ref() == pq => {
                    let (_, hist) = changes.next().expect("peeked");
                    let mut count = 0u32;
                    for (s, &delta_s) in hist.iter().enumerate() {
                        let c = i64::from(old_hists[i * m + s]) + delta_s;
                        assert!(c >= 0, "folded table is out of sync: negative count");
                        let c = u32::try_from(c).expect("count fits u32");
                        scratch[s] = c;
                        count += c;
                        self.sensitive_totals[s] =
                            (self.sensitive_totals[s] as i64 + delta_s) as u64;
                        self.rows = (self.rows as i64 + delta_s) as usize;
                    }
                    if count > 0 {
                        self.qi.extend_from_slice(pq);
                        self.counts.push(count);
                        self.hists.extend_from_slice(&scratch);
                    }
                }
                _ => {
                    self.qi.extend_from_slice(pq);
                    self.counts.push(old_counts[i]);
                    self.hists.extend_from_slice(&old_hists[i * m..(i + 1) * m]);
                }
            }
        }
        for (qi, hist) in changes {
            self.insert_fresh(qi, hist);
        }
        touched.into_keys().collect()
    }

    /// Append a brand-new point from a net-change histogram (all deltas
    /// must be non-negative — there was nothing to delete from).
    fn insert_fresh(&mut self, qi: &[u32], hist: &[i64]) {
        let mut count = 0u32;
        let start = self.hists.len();
        for (s, &delta_s) in hist.iter().enumerate() {
            assert!(
                delta_s >= 0,
                "folded table is out of sync: delete of unseen point"
            );
            let c = u32::try_from(delta_s).expect("count fits u32");
            self.hists.push(c);
            count += c;
            self.sensitive_totals[s] += u64::from(c);
            self.rows += c as usize;
        }
        debug_assert!(count > 0, "net-zero change must have been filtered");
        debug_assert_eq!(self.hists.len() - start, self.m);
        self.qi.extend_from_slice(qi);
        self.counts.push(count);
    }
}

/// Per-attribute inverted index over a [`FoldedTable`]'s points, in two
/// complementary forms built once per estimation pass:
///
/// * **postings** — per attribute value, the ascending list of point
///   indices carrying it (drives selectivity estimates, contiguous-range
///   seeds and posting-list gathers);
/// * **value bitsets** — per attribute value, a `u`-bit set over the
///   points. A query with narrow supports enumerates the **exact**
///   product-kernel support by AND-ing one (OR-folded) bitset per
///   attribute across the most selective attribute's id window — a few
///   hundred word operations instead of thousands of candidate probes.
#[derive(Debug, Clone)]
pub struct SupportIndex {
    /// Per attribute: (`offsets` of length `r + 1`, point `ids`).
    postings: Vec<(Vec<u32>, Vec<u32>)>,
    /// Bits per point-id word (`u.div_ceil(64)`).
    words: usize,
    /// Per attribute: `r × words` row-major point bitsets.
    value_bits: Vec<Vec<u64>>,
}

impl SupportIndex {
    fn build(folded: &FoldedTable, sizes: &[usize]) -> Self {
        let u = folded.len();
        let words = u.div_ceil(64);
        let mut value_bits = Vec::with_capacity(sizes.len());
        let postings = sizes
            .iter()
            .enumerate()
            .map(|(attr, &r)| {
                let mut offsets = vec![0u32; r + 1];
                let mut bits = vec![0u64; r * words];
                for id in 0..u {
                    let v = folded.point_qi(id)[attr] as usize;
                    offsets[v + 1] += 1;
                    bits[v * words + id / 64] |= 1u64 << (id % 64);
                }
                value_bits.push(bits);
                for v in 0..r {
                    offsets[v + 1] += offsets[v];
                }
                let mut cursor = offsets.clone();
                let mut ids = vec![0u32; u];
                for id in 0..u {
                    let v = folded.point_qi(id)[attr] as usize;
                    ids[cursor[v] as usize] = id as u32;
                    cursor[v] += 1;
                }
                (offsets, ids)
            })
            .collect();
        SupportIndex {
            postings,
            words,
            value_bits,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.postings.first().map_or(0, |(_, ids)| ids.len())
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a query enumerates the folded points: everything, a contiguous range
/// of the sorted order, or an explicitly gathered sorted id list.
enum CandidateSet<'a> {
    All,
    Range(usize, usize),
    List(&'a [u32]),
}

/// The estimated prior belief function `P̂pri` of one adversary.
///
/// Holds a distribution for every distinct QI combination of the estimation
/// table, the [`FoldedTable`] it was estimated from (making the model
/// [refreshable](PriorModel::refresh) under table deltas), and the
/// bandwidth/family provenance; unseen combinations can be estimated on
/// demand with [`PriorEstimator::estimate_at`].
#[derive(Debug, Clone)]
pub struct PriorModel {
    priors: HashMap<Box<[u32]>, Dist>,
    /// The whole-table sensitive distribution, used as the zero-weight
    /// fallback (it is also what Eq. 2 degrades to with maximal bandwidth).
    table_distribution: Dist,
    /// The folded estimation table — present on models built by the
    /// estimator (and reloaded v2 persisted models), absent on bare
    /// [`from_parts`](Self::from_parts) models.
    folded: Option<FoldedTable>,
    /// Bandwidth the model was estimated with, when known.
    bandwidth: Option<Bandwidth>,
    /// Kernel family the model was estimated with.
    family: KernelFamily,
}

impl PriorModel {
    /// Assemble a model from raw parts (the legacy persistence format and
    /// tests use this; prefer [`PriorEstimator::estimate`]). The result has
    /// no folded table and therefore cannot
    /// [`refresh`](PriorModel::refresh).
    pub fn from_parts(priors: HashMap<Box<[u32]>, Dist>, table_distribution: Dist) -> Self {
        PriorModel {
            priors,
            table_distribution,
            folded: None,
            bandwidth: None,
            family: KernelFamily::default(),
        }
    }

    /// Assemble a refreshable model (the v2 persistence path).
    pub(crate) fn from_parts_folded(
        priors: HashMap<Box<[u32]>, Dist>,
        folded: FoldedTable,
        bandwidth: Bandwidth,
        family: KernelFamily,
    ) -> Self {
        PriorModel {
            priors,
            table_distribution: folded.table_distribution(),
            folded: Some(folded),
            bandwidth: Some(bandwidth),
            family,
        }
    }

    /// Prior belief for the QI combination `qi`, if it appeared in the
    /// estimation table.
    pub fn prior(&self, qi: &[u32]) -> Option<&Dist> {
        self.priors.get(qi)
    }

    /// Prior belief for `qi`, falling back to the whole-table distribution
    /// for combinations outside the estimation table.
    pub fn prior_or_fallback(&self, qi: &[u32]) -> &Dist {
        self.priors.get(qi).unwrap_or(&self.table_distribution)
    }

    /// The whole-table sensitive distribution `Q`.
    pub fn table_distribution(&self) -> &Dist {
        &self.table_distribution
    }

    /// The folded estimation table, when the model carries one.
    pub fn folded(&self) -> Option<&FoldedTable> {
        self.folded.as_ref()
    }

    /// Bandwidth provenance, when known.
    pub fn bandwidth(&self) -> Option<&Bandwidth> {
        self.bandwidth.as_ref()
    }

    /// Kernel-family provenance ([`KernelFamily::Epanechnikov`] when
    /// unknown).
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// True when the model carries its folded table and can therefore
    /// [`refresh`](Self::refresh) under deltas.
    pub fn is_refreshable(&self) -> bool {
        self.folded.is_some()
    }

    /// Evolve the model by one table delta, recomputing only the priors
    /// inside the kernel neighborhood of the changed points — see
    /// [`PriorEstimator::refresh_with`], which this delegates to with
    /// [`Parallelism::Auto`].
    ///
    /// ```
    /// use std::sync::Arc;
    /// use bgkanon_data::DeltaBuilder;
    /// use bgkanon_knowledge::{Bandwidth, PriorEstimator};
    ///
    /// let table = bgkanon_data::adult::generate(120, 7);
    /// let estimator = PriorEstimator::new(
    ///     Arc::clone(table.schema()),
    ///     Bandwidth::uniform(0.25, table.qi_count()).unwrap(),
    /// );
    /// let mut model = estimator.estimate(&table);
    ///
    /// let mut delta = DeltaBuilder::new(Arc::clone(table.schema()));
    /// delta.delete(3).delete(40);
    /// let delta = delta.build();
    /// model.refresh(&estimator, &table, &delta);
    ///
    /// // Bit-identical to estimating the post-delta table from scratch.
    /// let fresh = estimator.estimate(&table.apply_delta(&delta).unwrap());
    /// for (qi, p) in fresh.iter() {
    ///     assert_eq!(p, model.prior(qi).unwrap());
    /// }
    /// ```
    pub fn refresh(&mut self, estimator: &PriorEstimator, table: &Table, delta: &Delta) {
        estimator.refresh(self, table, delta);
    }

    /// Number of distinct QI combinations covered.
    pub fn len(&self) -> usize {
        self.priors.len()
    }

    /// True if no combinations are covered.
    pub fn is_empty(&self) -> bool {
        self.priors.is_empty()
    }

    /// Iterate over `(qi, prior)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &Dist)> {
        self.priors.iter().map(|(k, v)| (k.as_ref(), v)) // bgk-allow: R3 callers sort before emission (persist::save_model)
    }

    /// Heap bytes resident in this model: the prior map (every entry holds
    /// a boxed QI key and an `m`-ary distribution — uniform shapes, so the
    /// sum needs no hash-ordered iteration), the table distribution, and
    /// the retained fold. The accounting hook the serving hub's memory
    /// budget rolls up per tenant (and the intern table reports once per
    /// *shared* model); a deterministic owned-payload estimate, not an
    /// allocator-exact RSS.
    pub fn bytes_accounted(&self) -> usize {
        let m = self.table_distribution.len();
        let d = self
            .bandwidth
            .as_ref()
            .map(Bandwidth::len)
            .or_else(|| self.folded.as_ref().map(FoldedTable::qi_count))
            .unwrap_or(8);
        let per_entry = d * 4 + m * 8 + 96;
        self.priors.len() * per_entry
            + m * 8
            + self.folded.as_ref().map_or(0, FoldedTable::bytes_accounted)
            + 64
    }
}

/// Configured kernel regression estimator for one bandwidth vector.
///
/// ```
/// use std::sync::Arc;
/// use bgkanon_knowledge::{Bandwidth, PriorEstimator};
///
/// let table = bgkanon_data::toy::hospital_table();
/// let estimator = PriorEstimator::new(
///     Arc::clone(table.schema()),
///     Bandwidth::uniform(0.4, 2).unwrap(),
/// );
/// let model = estimator.estimate(&table);
/// // One prior per distinct QI combination; all normalized.
/// assert_eq!(model.len(), table.group_by_qi().len());
/// ```
#[derive(Debug, Clone)]
pub struct PriorEstimator {
    schema: Arc<Schema>,
    bandwidth: Bandwidth,
    family: KernelFamily,
    /// Per attribute, the CSR kernel weight table
    /// `W_i[a][b] = K_i(d_i(a, b))`.
    weights: Vec<SparseWeights>,
}

impl PriorEstimator {
    /// Build an estimator for `schema` with bandwidths `bandwidth` (one per
    /// QI attribute) and the paper's Epanechnikov kernel.
    pub fn new(schema: Arc<Schema>, bandwidth: Bandwidth) -> Self {
        Self::with_family(schema, bandwidth, KernelFamily::Epanechnikov)
    }

    /// Build with an explicit kernel family.
    pub fn with_family(schema: Arc<Schema>, bandwidth: Bandwidth, family: KernelFamily) -> Self {
        assert_eq!(
            bandwidth.len(),
            schema.qi_count(),
            "bandwidth dimension {} must equal the number of QI attributes {}",
            bandwidth.len(),
            schema.qi_count()
        );
        let weights = (0..schema.qi_count())
            .map(|i| {
                let kernel = family.kernel(bandwidth.get(i));
                SparseWeights::build(&kernel, schema.qi_distance(i))
            })
            .collect();
        PriorEstimator {
            schema,
            bandwidth,
            family,
            weights,
        }
    }

    /// The bandwidth vector `B`.
    pub fn bandwidth(&self) -> &Bandwidth {
        &self.bandwidth
    }

    /// The kernel family in use.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// The sparse kernel weight table of attribute `i`.
    pub fn sparse_weights(&self, i: usize) -> &SparseWeights {
        &self.weights[i]
    }

    /// Heap bytes of the CSR kernel weight tables — the estimator's only
    /// size-dependent state. Part of the serving hub's per-tenant memory
    /// accounting (a deterministic proxy, not allocator-exact).
    pub fn bytes_accounted(&self) -> usize {
        self.weights
            .iter()
            .map(|w| w.row_ptr.len() * 8 + w.cols.len() * 4 + w.weights.len() * 8 + 64)
            .sum::<usize>()
            + self.bandwidth.len() * 8
            + 64
    }

    /// Per-attribute support density (fraction of nonzero entries in each
    /// `r × r` kernel table) — the diagnostic that predicts the sparse
    /// engine's win over the dense scan.
    pub fn support_density(&self) -> Vec<f64> {
        self.weights.iter().map(SparseWeights::density).collect()
    }

    /// Product kernel weight `Π_i K_i(d_i(a_i, b_i))` between two QI
    /// points, short-circuiting on the first zero factor.
    #[inline]
    fn pair_weight(&self, a: &[u32], b: &[u32]) -> f64 {
        let mut w = 1.0;
        for (i, table) in self.weights.iter().enumerate() {
            w *= table.weight(a[i], b[i]);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// Build the [`SupportIndex`] over `folded`'s points.
    pub fn index(&self, folded: &FoldedTable) -> SupportIndex {
        assert_eq!(
            folded.qi_count(),
            self.schema.qi_count(),
            "QI arity mismatch"
        );
        let sizes: Vec<usize> = self.weights.iter().map(SparseWeights::size).collect();
        SupportIndex::build(folded, &sizes)
    }

    /// Below this many points, iterating a contiguous sorted-order range
    /// beats gathering + intersecting posting lists.
    const RANGE_DIRECT_MAX: usize = 192;

    /// Enumerate the candidate points for query `q` (`buf` is reusable
    /// scratch): **seed** from the most selective attribute's posting lists
    /// and **intersect** with attribute 0's support window — because the
    /// points are sorted lexicographically, attribute 0's posting ids are
    /// the identity permutation, so a contiguous attribute-0 support is one
    /// id range `[lo, hi)` and each seed posting list restricts to it with
    /// two binary searches. The remaining attributes intersect away inside
    /// the product-weight computation, which short-circuits on the first
    /// zero factor. Every point with nonzero product weight is guaranteed
    /// to be in the set; with `ordered` the set comes out in ascending
    /// point order (required for bit-identical accumulation — dirty-marking
    /// passes `false` and skips the sort).
    fn candidates<'a>(
        &self,
        folded: &FoldedTable,
        index: &SupportIndex,
        q: &[u32],
        buf: &'a mut Vec<u32>,
        bits: &mut Vec<u64>,
        ordered: bool,
    ) -> CandidateSet<'a> {
        let u = folded.len();
        // Candidate count per attribute; track the best overall and the
        // best gatherable (non-attribute-0) seed.
        let mut best = (usize::MAX, 0usize);
        let mut best_rest = (usize::MAX, 0usize);
        for (i, w) in self.weights.iter().enumerate() {
            let (offsets, _) = &index.postings[i];
            let support = w.support(q[i]);
            let count = if w.is_contiguous() {
                let first = support[0] as usize;
                let last = support[support.len() - 1] as usize;
                (offsets[last + 1] - offsets[first]) as usize
            } else {
                support
                    .iter()
                    .map(|&b| (offsets[b as usize + 1] - offsets[b as usize]) as usize)
                    .sum()
            };
            if count < best.0 {
                best = (count, i);
            }
            if i > 0 && count < best_rest.0 {
                best_rest = (count, i);
            }
        }
        if best.0 >= u {
            return CandidateSet::All;
        }
        // Attribute 0's support window in sorted-point-id space.
        let window = if self.weights[0].is_contiguous() {
            let support = self.weights[0].support(q[0]);
            let (offsets, _) = &index.postings[0];
            let first = support[0] as usize;
            let last = support[support.len() - 1] as usize;
            Some((offsets[first] as usize, offsets[last + 1] as usize))
        } else {
            None
        };
        // Exact product-support enumeration: AND one (OR-folded) value
        // bitset per attribute across the window — whenever the supports
        // are narrow (the compact-support common case) this is a few
        // hundred word operations and yields exactly the nonzero-weight
        // point set, beating any posting-list gather.
        let (lo, hi) = window.unwrap_or((0, u));
        let w0 = lo / 64;
        let w1 = hi.div_ceil(64).max(w0 + 1);
        let span = w1 - w0;
        let skip0 = usize::from(window.is_some());
        let or_count: usize = (skip0..self.weights.len())
            .map(|i| self.weights[i].support(q[i]).len())
            .sum();
        // A gathered candidate costs several operations to copy and probe;
        // a bitset word-op is one — weigh the comparison accordingly.
        if or_count > 0 && span * (or_count + 2) < best.0 * 4 {
            let words_all = index.words;
            bits.resize(words_all.max(span), 0);
            let mut first = true;
            for ((weights, &q_i), rows) in self
                .weights
                .iter()
                .zip(q)
                .zip(&index.value_bits)
                .skip(skip0)
            {
                let support = weights.support(q_i);
                for (w, slot) in bits[..span].iter_mut().enumerate() {
                    if !first && *slot == 0 {
                        continue;
                    }
                    let mut mask = 0u64;
                    for &b in support {
                        mask |= rows[b as usize * words_all + w0 + w];
                    }
                    if first {
                        *slot = mask;
                    } else {
                        *slot &= mask;
                    }
                }
                first = false;
            }
            // Clip the window's partial boundary words.
            if lo % 64 != 0 {
                bits[0] &= !0u64 << (lo % 64);
            }
            if hi % 64 != 0 {
                bits[span - 1] &= !0u64 >> (64 - hi % 64);
            }
            buf.clear();
            for (wi, slot) in bits[..span].iter_mut().enumerate() {
                let mut word = std::mem::take(slot);
                while word != 0 {
                    buf.push(((w0 + wi) * 64 + word.trailing_zeros() as usize) as u32);
                    word &= word - 1;
                }
            }
            return CandidateSet::List(buf);
        }
        let seed = if best.1 == 0 {
            if let Some((lo, hi)) = window {
                if best_rest.0 >= u || hi - lo <= Self::RANGE_DIRECT_MAX {
                    // No gatherable seed, or the window is already tiny.
                    return CandidateSet::Range(lo, hi);
                }
                // Seed from the best non-window attribute instead; the
                // window restriction below does the actual narrowing.
                best_rest.1
            } else {
                0
            }
        } else {
            best.1
        };
        let (offsets, ids) = &index.postings[seed];
        buf.clear();
        if ordered {
            // Gather into a point-id bitset and read the set bits back in
            // ascending order — much cheaper than sorting the gathered
            // list, and ascending order is what bit-identical accumulation
            // requires.
            bits.resize(u.div_ceil(64), 0);
            let mut min_word = usize::MAX;
            let mut max_word = 0usize;
            for &b in self.weights[seed].support(q[seed]) {
                let mut slice =
                    &ids[offsets[b as usize] as usize..offsets[b as usize + 1] as usize];
                if seed != 0 {
                    if let Some((lo, hi)) = window {
                        let start = slice.partition_point(|&id| (id as usize) < lo);
                        let end = slice.partition_point(|&id| (id as usize) < hi);
                        slice = &slice[start..end];
                    }
                }
                for &id in slice {
                    let word = id as usize / 64;
                    bits[word] |= 1u64 << (id as usize % 64);
                    min_word = min_word.min(word);
                    max_word = max_word.max(word);
                }
            }
            if min_word == usize::MAX {
                return CandidateSet::List(buf);
            }
            for (word_idx, slot) in bits
                .iter_mut()
                .enumerate()
                .take(max_word + 1)
                .skip(min_word)
            {
                let mut word = std::mem::take(slot);
                while word != 0 {
                    buf.push((word_idx * 64 + word.trailing_zeros() as usize) as u32);
                    word &= word - 1;
                }
            }
        } else {
            for &b in self.weights[seed].support(q[seed]) {
                let mut slice =
                    &ids[offsets[b as usize] as usize..offsets[b as usize + 1] as usize];
                if seed != 0 {
                    if let Some((lo, hi)) = window {
                        let start = slice.partition_point(|&id| (id as usize) < lo);
                        let end = slice.partition_point(|&id| (id as usize) < hi);
                        slice = &slice[start..end];
                    }
                }
                buf.extend_from_slice(slice);
            }
        }
        CandidateSet::List(buf)
    }

    /// Accumulate Eq. 1–2 numerators/denominator over `candidates`, in
    /// ascending sorted-point order (what makes every engine bit-identical).
    fn accumulate(
        &self,
        q: &[u32],
        folded: &FoldedTable,
        candidates: CandidateSet<'_>,
        numer: &mut Vec<f64>,
    ) -> f64 {
        let m = folded.sensitive_domain_size();
        numer.clear();
        numer.resize(m, 0.0);
        let mut denom = 0.0f64;
        let mut visit = |id: usize| {
            let w = self.pair_weight(q, folded.point_qi(id));
            if w > 0.0 {
                denom += w * f64::from(folded.counts[id]);
                for (s, &c) in folded.point_hist(id).iter().enumerate() {
                    if c > 0 {
                        numer[s] += w * f64::from(c);
                    }
                }
            }
        };
        match candidates {
            CandidateSet::All => (0..folded.len()).for_each(&mut visit),
            CandidateSet::Range(lo, hi) => (lo..hi).for_each(&mut visit),
            CandidateSet::List(ids) => ids.iter().for_each(|&id| visit(id as usize)),
        }
        denom
    }

    /// Turn accumulated numerators into the prior distribution (falling
    /// back to the table distribution outside every kernel support).
    fn finalize(&self, numer: &[f64], denom: f64, fallback: &Dist) -> Dist {
        if denom <= 0.0 {
            // No point of the table inside the kernel support (possible only
            // for q outside the table with small bandwidths).
            return fallback.clone();
        }
        let p: Vec<f64> = numer.iter().map(|&x| x / denom).collect();
        Dist::new(p).unwrap_or_else(|_| fallback.clone())
    }

    /// One sparse query against a prepared fold + index.
    #[allow(clippy::too_many_arguments)]
    fn query(
        &self,
        folded: &FoldedTable,
        index: &SupportIndex,
        q: &[u32],
        fallback: &Dist,
        buf: &mut Vec<u32>,
        bits: &mut Vec<u64>,
        numer: &mut Vec<f64>,
    ) -> Dist {
        let candidates = self.candidates(folded, index, q, buf, bits, true);
        let denom = self.accumulate(q, folded, candidates, numer);
        self.finalize(numer, denom, fallback)
    }

    /// Estimate the full prior model over every distinct QI combination in
    /// `table` with the default [`Parallelism::Auto`] (the sparse engine on
    /// every available core).
    pub fn estimate(&self, table: &Table) -> PriorModel {
        self.estimate_with(table, Parallelism::Auto)
    }

    /// Estimate with an explicit parallelism knob, consistent with the
    /// Mondrian and audit engines: [`Parallelism::Serial`] selects the
    /// **dense all-pairs reference** path
    /// ([`estimate_reference`](Self::estimate_reference)), `Auto`/
    /// `Threads(n)` the sparse neighbor-bounded engine. All knobs produce
    /// bit-identical models.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use bgkanon_data::Parallelism;
    /// use bgkanon_knowledge::{Bandwidth, PriorEstimator};
    ///
    /// let table = bgkanon_data::adult::generate(150, 3);
    /// let estimator = PriorEstimator::new(
    ///     Arc::clone(table.schema()),
    ///     Bandwidth::uniform(0.25, table.qi_count()).unwrap(),
    /// );
    /// let dense = estimator.estimate_with(&table, Parallelism::Serial);
    /// let sparse = estimator.estimate_with(&table, Parallelism::threads(2));
    /// for (qi, p) in dense.iter() {
    ///     assert_eq!(p, sparse.prior(qi).unwrap()); // bit-identical
    /// }
    /// ```
    pub fn estimate_with(&self, table: &Table, parallelism: Parallelism) -> PriorModel {
        self.estimate_folded(FoldedTable::new(table), parallelism)
    }

    /// Estimate from an already-built fold (the fold is retained inside the
    /// returned model — reach it back via [`PriorModel::folded`]).
    pub fn estimate_folded(&self, folded: FoldedTable, parallelism: Parallelism) -> PriorModel {
        assert_eq!(
            folded.qi_count(),
            self.schema.qi_count(),
            "QI arity mismatch"
        );
        if parallelism.is_serial() {
            return self.reference_from(folded);
        }
        let mut folded = folded;
        let mut fallback = folded.table_distribution();
        let index = self.index(&folded);
        let n_points = folded.len();
        let threads = parallelism.effective_threads().min(n_points.max(1));
        let mut results: Vec<Option<Dist>> = vec![None; n_points];
        if threads <= 1 {
            let mut buf = Vec::new();
            let mut bits = Vec::new();
            let mut numer = Vec::new();
            for (i, slot) in results.iter_mut().enumerate() {
                *slot = Some(self.query(
                    &folded,
                    &index,
                    folded.point_qi(i),
                    &fallback,
                    &mut buf,
                    &mut bits,
                    &mut numer,
                ));
            }
        } else {
            // Worker jobs run on the process-wide pool — an estimation
            // issued by a serving thread reuses the same workers as every
            // other engine call instead of spawning a scope per call. Jobs
            // are `'static`: the per-call fold/index/fallback move in
            // behind `Arc`s (recovered after the barrier — the jobs have
            // all dropped their handles by then) and each job carries its
            // own estimator clone.
            let chunk = n_points.div_ceil(threads);
            let shared_folded = Arc::new(folded);
            let shared_index = Arc::new(index);
            let shared_fallback = Arc::new(fallback);
            let jobs: Vec<_> = (0..n_points.div_ceil(chunk))
                .map(|t| {
                    let this = self.clone();
                    let folded = Arc::clone(&shared_folded);
                    let index = Arc::clone(&shared_index);
                    let fallback = Arc::clone(&shared_fallback);
                    move || {
                        let mut buf = Vec::new();
                        let mut bits = Vec::new();
                        let mut numer = Vec::new();
                        let start = t * chunk;
                        (start..(start + chunk).min(folded.len()))
                            .map(|i| {
                                this.query(
                                    &folded,
                                    &index,
                                    folded.point_qi(i),
                                    &fallback,
                                    &mut buf,
                                    &mut bits,
                                    &mut numer,
                                )
                            })
                            .collect::<Vec<Dist>>()
                    }
                })
                .collect();
            let outputs = bgkanon_data::shared_pool().run(jobs);
            for (t, chunk_out) in outputs.into_iter().enumerate() {
                for (off, dist) in chunk_out.into_iter().enumerate() {
                    results[t * chunk + off] = Some(dist);
                }
            }
            folded = Arc::try_unwrap(shared_folded).expect("pool jobs have joined");
            fallback = Arc::try_unwrap(shared_fallback).expect("pool jobs have joined");
        }
        let priors = (0..n_points)
            .zip(results)
            .map(|(i, d)| (folded.point_qi(i).into(), d.expect("filled above")))
            .collect();
        PriorModel {
            priors,
            table_distribution: fallback,
            folded: Some(folded),
            bandwidth: Some(self.bandwidth.clone()),
            family: self.family,
        }
    }

    /// The dense all-pairs **reference** engine: a direct `O(u²·(d+m))`
    /// transcription of Eq. 1–2 over the folded points, single-threaded.
    /// This is the simple, auditable path the sparse engine is
    /// property-tested against — and what [`Parallelism::Serial`] selects.
    pub fn estimate_reference(&self, table: &Table) -> PriorModel {
        self.reference_from(FoldedTable::new(table))
    }

    fn reference_from(&self, folded: FoldedTable) -> PriorModel {
        assert_eq!(
            folded.qi_count(),
            self.schema.qi_count(),
            "QI arity mismatch"
        );
        let fallback = folded.table_distribution();
        let mut numer = Vec::new();
        let mut priors = HashMap::with_capacity(folded.len());
        for i in 0..folded.len() {
            let denom = self.accumulate(folded.point_qi(i), &folded, CandidateSet::All, &mut numer);
            priors.insert(
                folded.point_qi(i).into(),
                self.finalize(&numer, denom, &fallback),
            );
        }
        PriorModel {
            priors,
            table_distribution: fallback,
            folded: Some(folded),
            bandwidth: Some(self.bandwidth.clone()),
            family: self.family,
        }
    }

    /// Estimate the prior at one (possibly unseen) QI point `q` against
    /// `table`. Folds the table on every call — batch repeated queries
    /// through [`FoldedTable::new`] + [`estimate_many`](Self::estimate_many)
    /// (or [`estimate_indexed`](Self::estimate_indexed)) instead.
    pub fn estimate_at(&self, table: &Table, q: &[u32]) -> Dist {
        let folded = FoldedTable::new(table);
        let index = self.index(&folded);
        self.estimate_indexed(&folded, &index, q)
    }

    /// Estimate the priors at many (possibly unseen) QI points against one
    /// fold, building the support index once.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use bgkanon_knowledge::{Bandwidth, FoldedTable, PriorEstimator};
    ///
    /// let table = bgkanon_data::toy::hospital_table();
    /// let estimator = PriorEstimator::new(
    ///     Arc::clone(table.schema()),
    ///     Bandwidth::uniform(0.5, 2).unwrap(),
    /// );
    /// let folded = FoldedTable::new(&table);
    /// let queries: Vec<&[u32]> = vec![&[20, 1], &[0, 0]];
    /// let priors = estimator.estimate_many(&folded, &queries);
    /// assert_eq!(priors.len(), 2);
    /// ```
    pub fn estimate_many(&self, folded: &FoldedTable, queries: &[&[u32]]) -> Vec<Dist> {
        let index = self.index(folded);
        let fallback = folded.table_distribution();
        let mut buf = Vec::new();
        let mut bits = Vec::new();
        let mut numer = Vec::new();
        queries
            .iter()
            .map(|q| {
                assert_eq!(q.len(), self.schema.qi_count(), "QI arity mismatch");
                self.query(
                    folded, &index, q, &fallback, &mut buf, &mut bits, &mut numer,
                )
            })
            .collect()
    }

    /// Single-query form against a prepared fold + index (the micro-bench
    /// and hot-loop entry point; `index` must have been built from `folded`
    /// by [`index`](Self::index)).
    pub fn estimate_indexed(&self, folded: &FoldedTable, index: &SupportIndex, q: &[u32]) -> Dist {
        assert_eq!(q.len(), self.schema.qi_count(), "QI arity mismatch");
        debug_assert_eq!(index.len(), folded.len(), "index built from another fold");
        let fallback = folded.table_distribution();
        let mut buf = Vec::new();
        let mut bits = Vec::new();
        let mut numer = Vec::new();
        self.query(folded, index, q, &fallback, &mut buf, &mut bits, &mut numer)
    }

    /// [`refresh_with`](Self::refresh_with) under [`Parallelism::Auto`].
    pub fn refresh(&self, model: &mut PriorModel, table: &Table, delta: &Delta) {
        self.refresh_with(model, table, delta, Parallelism::Auto);
    }

    /// Evolve `model` by one delta against its estimation table, where
    /// `table` is the **pre-delta** table the model currently reflects.
    /// Compact kernel support means the delta can only perturb priors
    /// within the product-kernel neighborhood of the changed QI points, so
    /// only that dirty neighborhood is recomputed (under `parallelism`
    /// worker threads; `Serial` recomputes on one thread). The result is
    /// **bit-identical** to a from-scratch
    /// [`estimate`](Self::estimate) of the post-delta table.
    ///
    /// # Panics
    ///
    /// Panics when `model` was not built by this estimator's `estimate*`
    /// path (no folded table — see [`PriorModel::is_refreshable`]), when
    /// `table`/`delta` are inconsistent with the model's fold, or when the
    /// delta would empty the table (checked before any mutation — see
    /// [`FoldedTable::apply_delta`]).
    pub fn refresh_with(
        &self,
        model: &mut PriorModel,
        table: &Table,
        delta: &Delta,
        parallelism: Parallelism,
    ) {
        let t0 = std::time::Instant::now(); // bgk-allow: R3 BGK_PROFILE timer, output-neutral
                                            // Checked here, before the fold is taken out of the model, so a
                                            // panic leaves the model fully intact.
        assert!(
            table.len() + delta.insert_count() > delta.delete_count(),
            "delta would empty the table"
        );
        let mut folded = model
            .folded
            .take()
            .expect("model is not refreshable (built without a folded table)");
        let changed = folded.apply_delta(table, delta);
        if changed.is_empty() {
            model.folded = Some(folded);
            return;
        }
        let t1 = std::time::Instant::now(); // bgk-allow: R3 BGK_PROFILE timer, output-neutral
        let mut fallback = folded.table_distribution();
        let index = self.index(&folded);
        let t2 = std::time::Instant::now(); // bgk-allow: R3 BGK_PROFILE timer, output-neutral

        // Mark the dirty neighborhood: every point within the (symmetric)
        // product-kernel support of a changed QI combination.
        let mut dirty = vec![false; folded.len()];
        let mut buf = Vec::new();
        let mut bits = Vec::new();
        for key in &changed {
            // Order is irrelevant for marking — skip the sort.
            let candidates = self.candidates(&folded, &index, key, &mut buf, &mut bits, false);
            let mut mark = |id: usize| {
                if !dirty[id] && self.pair_weight(key, folded.point_qi(id)) > 0.0 {
                    dirty[id] = true;
                }
            };
            match candidates {
                CandidateSet::All => (0..folded.len()).for_each(&mut mark),
                CandidateSet::Range(lo, hi) => (lo..hi).for_each(&mut mark),
                CandidateSet::List(ids) => ids.iter().for_each(|&id| mark(id as usize)),
            }
            // Combinations deleted outright no longer have a prior.
            if folded.find(key).is_none() {
                model.priors.remove(key);
            }
        }
        let mut dirty_ids: Vec<u32> = dirty
            .iter()
            .enumerate()
            .filter_map(|(id, &d)| d.then_some(id as u32))
            .collect();
        let t3 = std::time::Instant::now(); // bgk-allow: R3 BGK_PROFILE timer, output-neutral

        // Recompute exactly the dirty points, in deterministic order.
        let threads = parallelism.effective_threads().min(dirty_ids.len().max(1));
        let mut results: Vec<Option<Dist>> = vec![None; dirty_ids.len()];
        if threads <= 1 {
            let mut numer = Vec::new();
            for (slot, &id) in results.iter_mut().zip(&dirty_ids) {
                *slot = Some(self.query(
                    &folded,
                    &index,
                    folded.point_qi(id as usize),
                    &fallback,
                    &mut buf,
                    &mut bits,
                    &mut numer,
                ));
            }
        } else {
            // Worker jobs run on the process-wide pool, same as the
            // `estimate` path — a serving thread's refresh never opens a
            // per-call scope. Jobs are `'static`: the fold/index/fallback
            // and the dirty-id list move in behind `Arc`s (recovered after
            // the barrier — the jobs have all dropped their handles by
            // then) and each job carries its own estimator clone.
            let chunk = dirty_ids.len().div_ceil(threads);
            let shared_folded = Arc::new(folded);
            let shared_index = Arc::new(index);
            let shared_fallback = Arc::new(fallback);
            let shared_ids = Arc::new(dirty_ids);
            let jobs: Vec<_> = (0..shared_ids.len().div_ceil(chunk))
                .map(|t| {
                    let this = self.clone();
                    let folded = Arc::clone(&shared_folded);
                    let index = Arc::clone(&shared_index);
                    let fallback = Arc::clone(&shared_fallback);
                    let ids = Arc::clone(&shared_ids);
                    move || {
                        let mut buf = Vec::new();
                        let mut bits = Vec::new();
                        let mut numer = Vec::new();
                        let start = t * chunk;
                        ids[start..(start + chunk).min(ids.len())]
                            .iter()
                            .map(|&id| {
                                this.query(
                                    &folded,
                                    &index,
                                    folded.point_qi(id as usize),
                                    &fallback,
                                    &mut buf,
                                    &mut bits,
                                    &mut numer,
                                )
                            })
                            .collect::<Vec<Dist>>()
                    }
                })
                .collect();
            let outputs = bgkanon_data::shared_pool().run(jobs);
            for (t, chunk_out) in outputs.into_iter().enumerate() {
                for (off, dist) in chunk_out.into_iter().enumerate() {
                    results[t * chunk + off] = Some(dist);
                }
            }
            folded = Arc::try_unwrap(shared_folded).expect("pool jobs have joined");
            fallback = Arc::try_unwrap(shared_fallback).expect("pool jobs have joined");
            dirty_ids = Arc::try_unwrap(shared_ids).expect("pool jobs have joined");
        }
        for (&id, dist) in dirty_ids.iter().zip(results) {
            model.priors.insert(
                folded.point_qi(id as usize).into(),
                dist.expect("filled above"),
            );
        }
        model.table_distribution = fallback;
        if std::env::var("BGK_PROFILE").is_ok() {
            eprintln!(
                "refresh: points={} changed={} dirty={} fold={:?} index={:?} mark={:?} \
                 recompute={:?}",
                folded.len(),
                changed.len(),
                dirty_ids.len(),
                t1 - t0,
                t2 - t1,
                t3 - t2,
                t3.elapsed(),
            );
        }
        model.folded = Some(folded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::{adult, toy, DeltaBuilder};

    fn hospital() -> Table {
        toy::hospital_table()
    }

    #[test]
    #[ignore]
    fn probe_candidate_stats() {
        let t = adult::generate(100_000, 42);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.25, t.qi_count()).unwrap(),
        );
        for (i, w) in est.weights.iter().enumerate() {
            eprintln!(
                "attr {i}: r={} density={:.3} contiguous={}",
                w.size(),
                w.density(),
                w.is_contiguous()
            );
        }
        let folded = FoldedTable::new(&t);
        let index = est.index(&folded);
        let u = folded.len();
        let (mut tot_c, mut tot_sv, mut n_range, mut n_list, mut tot_range) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut buf = Vec::new();
        let mut bits = Vec::new();
        for i in 0..u {
            let q: Vec<u32> = folded.point_qi(i).to_vec();
            let cands = est.candidates(&folded, &index, &q, &mut buf, &mut bits, true);
            let ids: Vec<u32> = match cands {
                CandidateSet::All => (0..u as u32).collect(),
                CandidateSet::Range(lo, hi) => {
                    n_range += 1;
                    tot_range += (hi - lo) as u64;
                    (lo as u32..hi as u32).collect()
                }
                CandidateSet::List(l) => {
                    n_list += 1;
                    l.to_vec()
                }
            };
            tot_c += ids.len() as u64;
            tot_sv += ids
                .iter()
                .filter(|&&id| est.pair_weight(&q, folded.point_qi(id as usize)) > 0.0)
                .count() as u64;
        }
        eprintln!("u={u} mean_candidates={:.1} mean_survivors={:.1} range_queries={n_range} (mean len {:.1}) list_queries={n_list}",
            tot_c as f64 / u as f64, tot_sv as f64 / u as f64, tot_range as f64 / n_range.max(1) as f64);
    }

    #[test]
    fn priors_are_distributions() {
        let t = hospital();
        let b = Bandwidth::uniform(0.3, 2).unwrap();
        let est = PriorEstimator::new(Arc::clone(t.schema()), b);
        let model = est.estimate(&t);
        assert!(!model.is_empty());
        for (_, p) in model.iter() {
            let sum: f64 = p.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.as_slice().iter().all(|&x| x >= 0.0));
        }
        assert!(model.is_refreshable());
        assert_eq!(model.bandwidth().unwrap().get(0), 0.3);
    }

    #[test]
    fn sparse_engine_matches_dense_reference_bitwise() {
        for (n, b) in [(300usize, 0.25f64), (200, 0.6), (150, 1.5)] {
            let t = adult::generate(n, 11);
            for family in [
                KernelFamily::Epanechnikov,
                KernelFamily::Uniform,
                KernelFamily::Triangular,
            ] {
                let est = PriorEstimator::with_family(
                    Arc::clone(t.schema()),
                    Bandwidth::uniform(b, t.qi_count()).unwrap(),
                    family,
                );
                let dense = est.estimate_reference(&t);
                let sparse = est.estimate_with(&t, Parallelism::threads(2));
                assert_eq!(dense.len(), sparse.len());
                for (qi, p) in dense.iter() {
                    let q = sparse.prior(qi).expect("same key set");
                    for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{family:?} b={b} diverges");
                    }
                }
            }
        }
    }

    #[test]
    fn serial_knob_selects_the_reference_path() {
        let t = adult::generate(150, 5);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.25, t.qi_count()).unwrap(),
        );
        let serial = est.estimate_with(&t, Parallelism::Serial);
        let reference = est.estimate_reference(&t);
        for (qi, p) in reference.iter() {
            assert_eq!(
                p.as_slice(),
                serial.prior(qi).unwrap().as_slice(),
                "Serial must run the reference engine"
            );
        }
    }

    #[test]
    fn refresh_matches_from_scratch_estimate() {
        let t = adult::generate(250, 9);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.25, t.qi_count()).unwrap(),
        );
        let mut model = est.estimate(&t);

        let donors = adult::generate(10, 77);
        let mut b = DeltaBuilder::new(Arc::clone(t.schema()));
        b.delete(3).delete(17).delete(200);
        for r in 0..10 {
            b.insert_codes(&donors.qi(r), donors.sensitive_value(r))
                .unwrap();
        }
        let delta = b.build();
        est.refresh_with(&mut model, &t, &delta, Parallelism::threads(2));

        let next = t.apply_delta(&delta).unwrap();
        let fresh = est.estimate(&next);
        assert_eq!(model.len(), fresh.len());
        for (qi, p) in fresh.iter() {
            let q = model.prior(qi).expect("refreshed model covers the key");
            for (a, b) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "refresh drifts at {qi:?}");
            }
        }
        for (a, b) in model
            .table_distribution()
            .as_slice()
            .iter()
            .zip(fresh.table_distribution().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_delta_refresh_is_identity() {
        let t = adult::generate(100, 2);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.3, t.qi_count()).unwrap(),
        );
        let mut model = est.estimate(&t);
        let before = model.clone();
        est.refresh(&mut model, &t, &Delta::empty(Arc::clone(t.schema())));
        assert_eq!(model.len(), before.len());
        for (qi, p) in before.iter() {
            assert_eq!(p.as_slice(), model.prior(qi).unwrap().as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "delta would empty the table")]
    fn refresh_rejects_table_emptying_delta_before_mutation() {
        let t = adult::generate(20, 3);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.3, t.qi_count()).unwrap(),
        );
        let mut model = est.estimate(&t);
        let mut b = DeltaBuilder::new(Arc::clone(t.schema()));
        for r in 0..t.len() {
            b.delete(r);
        }
        // Table::apply_delta rejects the same delta with EmptyTable.
        assert!(t.apply_delta(&b.build()).is_err());
        let mut b = DeltaBuilder::new(Arc::clone(t.schema()));
        for r in 0..t.len() {
            b.delete(r);
        }
        est.refresh(&mut model, &t, &b.build());
    }

    #[test]
    #[should_panic(expected = "not refreshable")]
    fn from_parts_model_cannot_refresh() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 2).unwrap());
        let built = est.estimate(&t);
        let mut bare =
            PriorModel::from_parts(built.priors.clone(), built.table_distribution().clone());
        assert!(!bare.is_refreshable());
        est.refresh(&mut bare, &t, &Delta::empty(Arc::clone(t.schema())));
    }

    #[test]
    fn folded_table_tracks_delta() {
        let t = adult::generate(120, 4);
        let mut folded = FoldedTable::new(&t);
        let mut b = DeltaBuilder::new(Arc::clone(t.schema()));
        b.delete(0).delete(5);
        b.insert_codes(&t.qi(1), t.sensitive_value(1)).unwrap();
        let delta = b.build();
        let changed = folded.apply_delta(&t, &delta);
        assert!(!changed.is_empty());
        let next = t.apply_delta(&delta).unwrap();
        let fresh = FoldedTable::new(&next);
        assert_eq!(folded.rows(), next.len());
        assert_eq!(folded.len(), fresh.len());
        for (a, b) in folded.points().zip(fresh.points()) {
            assert_eq!(a.qi(), b.qi());
            assert_eq!(a.count(), b.count());
            assert_eq!(a.sensitive_counts(), b.sensitive_counts());
        }
    }

    #[test]
    fn sparse_weights_match_kernel() {
        let t = adult::generate(50, 1);
        let est = PriorEstimator::new(
            Arc::clone(t.schema()),
            Bandwidth::uniform(0.25, t.qi_count()).unwrap(),
        );
        for i in 0..t.qi_count() {
            let sw = est.sparse_weights(i);
            let kernel = KernelFamily::Epanechnikov.kernel(0.25);
            let dist = t.schema().qi_distance(i);
            let mut nnz = 0;
            for a in 0..dist.size() as u32 {
                for b in 0..dist.size() as u32 {
                    let expect = kernel.weight(dist.get(a, b));
                    assert_eq!(sw.weight(a, b).to_bits(), expect.to_bits());
                    if expect > 0.0 {
                        nnz += 1;
                        assert!(sw.support(a).contains(&b));
                    }
                }
            }
            assert_eq!(sw.nonzero(), nnz);
            let density = sw.density();
            assert!((0.0..=1.0).contains(&density));
            // The diagnostic agrees with the Kernel-side computation.
            let mut all = Vec::new();
            for a in 0..dist.size() as u32 {
                all.extend_from_slice(dist.row(a));
            }
            assert!((density - kernel.support_density(&all)).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_kernel_full_bandwidth_gives_table_distribution() {
        // §II.D: uniform kernel with B = the whole (normalized) range makes
        // every tuple weight equal, so the prior is the table distribution.
        let t = hospital();
        let b = Bandwidth::uniform(1.0, 2).unwrap();
        let est = PriorEstimator::with_family(Arc::clone(t.schema()), b, KernelFamily::Uniform);
        let model = est.estimate(&t);
        let q = model.table_distribution();
        for (_, p) in model.iter() {
            assert!(
                p.max_abs_diff(q) < 1e-12,
                "prior {p} should equal table distribution {q}"
            );
        }
    }

    #[test]
    fn tiny_bandwidth_recovers_mle() {
        // B → 0: only exact QI matches carry weight, so the prior equals the
        // empirical distribution among tuples sharing the QI combination.
        let t = hospital();
        let b = Bandwidth::uniform(1e-6, 2).unwrap();
        let est = PriorEstimator::new(Arc::clone(t.schema()), b);
        let model = est.estimate(&t);
        // Row 2 (52, F, Flu) and row 8 (52, M, Gastritis) have unique QI
        // combos → point masses on their own sensitive values.
        let p = model.prior(&t.qi(2)).unwrap();
        assert!((p.get(2) - 1.0).abs() < 1e-9, "expected point mass on Flu");
        let p8 = model.prior(&t.qi(8)).unwrap();
        assert!((p8.get(3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_bandwidth_is_more_informed() {
        // The 69-year-old male (row 0) has Emphysema. A small-bandwidth
        // adversary assigns Emphysema higher prior probability at his QI
        // point than a large-bandwidth adversary.
        let t = hospital();
        let mk = |b: f64| {
            let est =
                PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(b, 2).unwrap());
            est.estimate(&t).prior(&t.qi(0)).unwrap().clone()
        };
        let sharp = mk(0.15);
        let blurry = mk(1.0);
        assert!(
            sharp.get(0) > blurry.get(0),
            "sharp {} vs blurry {}",
            sharp.get(0),
            blurry.get(0)
        );
    }

    #[test]
    fn estimate_at_unseen_point_works() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.5, 2).unwrap());
        // Age 60 (code 20), M (code 1) is not in the table.
        let p = est.estimate_at(&t, &[20, 1]);
        let sum: f64 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_point_outside_support_falls_back() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(1e-6, 2).unwrap());
        let p = est.estimate_at(&t, &[0, 1]); // age 40, M — nothing within 1e-6
        assert!(p.max_abs_diff(&model_table_dist(&t)) < 1e-12);
    }

    fn model_table_dist(t: &Table) -> Dist {
        Dist::new(t.sensitive_distribution()).unwrap()
    }

    #[test]
    fn estimate_many_matches_estimate_at() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.4, 2).unwrap());
        let folded = FoldedTable::new(&t);
        let q0 = t.qi(0);
        let queries: Vec<&[u32]> = vec![&[20, 1], &[0, 0], &q0];
        let many = est.estimate_many(&folded, &queries);
        for (q, p) in queries.iter().zip(&many) {
            let single = est.estimate_at(&t, q);
            assert_eq!(p.as_slice(), single.as_slice());
        }
    }

    #[test]
    fn estimation_is_deterministic_across_runs() {
        let t = bgkanon_data::adult::generate(300, 5);
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 6).unwrap());
        let a = est.estimate(&t);
        let b = est.estimate(&t);
        for (qi, p) in a.iter() {
            assert!(p.max_abs_diff(b.prior(qi).unwrap()) < 1e-15);
        }
    }

    #[test]
    fn per_attribute_bandwidths_differ() {
        // Knowing Age precisely but Sex loosely differs from the converse.
        let t = hospital();
        let mk = |b: Vec<f64>| {
            let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::new(b).unwrap());
            est.estimate(&t).prior(&t.qi(0)).unwrap().clone()
        };
        let age_sharp = mk(vec![0.1, 1.0]);
        let sex_sharp = mk(vec![1.0, 0.1]);
        assert!(age_sharp.max_abs_diff(&sex_sharp) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth dimension")]
    fn dimension_mismatch_panics() {
        let t = hospital();
        let _ = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 5).unwrap());
    }

    #[test]
    fn kernel_family_constructors() {
        assert_eq!(
            KernelFamily::Epanechnikov.kernel(0.5),
            Kernel::epanechnikov(0.5)
        );
        assert_eq!(KernelFamily::Uniform.kernel(0.5), Kernel::uniform(0.5));
        assert_eq!(
            KernelFamily::Triangular.kernel(0.5),
            Kernel::triangular(0.5)
        );
        for f in [
            KernelFamily::Epanechnikov,
            KernelFamily::Uniform,
            KernelFamily::Triangular,
        ] {
            assert_eq!(f.as_str().parse::<KernelFamily>().unwrap(), f);
        }
        assert!("gaussian".parse::<KernelFamily>().is_err());
    }

    #[test]
    fn prior_model_fallback_for_unknown_combination() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 2).unwrap());
        let model = est.estimate(&t);
        // Age 70 (code 30) never occurs in the hospital table.
        let unknown = [30u32, 0u32];
        assert!(model.prior(&unknown).is_none());
        assert_eq!(
            model.prior_or_fallback(&unknown).as_slice(),
            model.table_distribution().as_slice()
        );
    }

    #[test]
    fn support_density_shrinks_with_bandwidth() {
        let t = adult::generate(50, 1);
        let density = |b: f64| {
            PriorEstimator::new(
                Arc::clone(t.schema()),
                Bandwidth::uniform(b, t.qi_count()).unwrap(),
            )
            .support_density()[0]
        };
        assert!(density(0.1) < density(0.5));
        assert_eq!(density(2.0), 1.0); // bandwidth past the range: dense
    }
}
