//! Nadaraya–Watson kernel regression estimation of the prior belief
//! function (Eq. 1–2 of the paper).
//!
//! For a QI point `q = (q_1..q_d)` the estimated prior is
//!
//! ```text
//!            Σ_j P(t_j) · Π_i K_i(d_i(q_i, t_j[A_i]))
//! P̂pri(q) = ─────────────────────────────────────────
//!            Σ_j        Π_i K_i(d_i(q_i, t_j[A_i]))
//! ```
//!
//! where `P(t_j)` is the point-mass representation of tuple `t_j` and `d_i`
//! the normalized semantic distance of attribute `A_i`. Implementation
//! notes:
//!
//! * per attribute, kernel weights are precomputed over the full `r × r`
//!   distance matrix, so each tuple-pair weight is `d` table lookups and
//!   multiplications;
//! * rows with identical QI combinations are folded (weight = count), making
//!   the cost `O(u² · (d + m))` for `u` distinct QI points;
//! * distinct points are processed in parallel with scoped threads.

use std::collections::HashMap;
use std::sync::Arc;

use bgkanon_data::{Schema, Table};
use bgkanon_stats::{Dist, Kernel};

use crate::bandwidth::Bandwidth;

/// Which kernel family to instantiate per attribute. The paper uses
/// Epanechnikov throughout; Uniform recovers the §II.D special cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelFamily {
    /// The paper's default.
    #[default]
    Epanechnikov,
    /// Box kernel.
    Uniform,
    /// Triangular kernel.
    Triangular,
}

impl KernelFamily {
    /// Instantiate a kernel of this family with bandwidth `b`.
    pub fn kernel(self, b: f64) -> Kernel {
        match self {
            KernelFamily::Epanechnikov => Kernel::epanechnikov(b),
            KernelFamily::Uniform => Kernel::uniform(b),
            KernelFamily::Triangular => Kernel::triangular(b),
        }
    }
}

/// The estimated prior belief function `P̂pri` of one adversary.
///
/// Holds a distribution for every distinct QI combination of the estimation
/// table; unseen combinations can be estimated on demand with
/// [`PriorEstimator::estimate_at`].
#[derive(Debug, Clone)]
pub struct PriorModel {
    priors: HashMap<Box<[u32]>, Dist>,
    /// The whole-table sensitive distribution, used as the zero-weight
    /// fallback (it is also what Eq. 2 degrades to with maximal bandwidth).
    table_distribution: Dist,
}

impl PriorModel {
    /// Assemble a model from raw parts (the persistence layer and tests use
    /// this; prefer [`PriorEstimator::estimate`]).
    pub fn from_parts(priors: HashMap<Box<[u32]>, Dist>, table_distribution: Dist) -> Self {
        PriorModel {
            priors,
            table_distribution,
        }
    }

    /// Prior belief for the QI combination `qi`, if it appeared in the
    /// estimation table.
    pub fn prior(&self, qi: &[u32]) -> Option<&Dist> {
        self.priors.get(qi)
    }

    /// Prior belief for `qi`, falling back to the whole-table distribution
    /// for combinations outside the estimation table.
    pub fn prior_or_fallback(&self, qi: &[u32]) -> &Dist {
        self.priors.get(qi).unwrap_or(&self.table_distribution)
    }

    /// The whole-table sensitive distribution `Q`.
    pub fn table_distribution(&self) -> &Dist {
        &self.table_distribution
    }

    /// Number of distinct QI combinations covered.
    pub fn len(&self) -> usize {
        self.priors.len()
    }

    /// True if no combinations are covered.
    pub fn is_empty(&self) -> bool {
        self.priors.is_empty()
    }

    /// Iterate over `(qi, prior)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &Dist)> {
        self.priors.iter().map(|(k, v)| (k.as_ref(), v))
    }
}

/// Configured kernel regression estimator for one bandwidth vector.
///
/// ```
/// use std::sync::Arc;
/// use bgkanon_knowledge::{Bandwidth, PriorEstimator};
///
/// let table = bgkanon_data::toy::hospital_table();
/// let estimator = PriorEstimator::new(
///     Arc::clone(table.schema()),
///     Bandwidth::uniform(0.4, 2).unwrap(),
/// );
/// let model = estimator.estimate(&table);
/// // One prior per distinct QI combination; all normalized.
/// assert_eq!(model.len(), table.group_by_qi().len());
/// ```
#[derive(Debug, Clone)]
pub struct PriorEstimator {
    schema: Arc<Schema>,
    bandwidth: Bandwidth,
    family: KernelFamily,
    /// Per attribute, row-major `r × r` kernel weights
    /// `W_i[a][b] = K_i(d_i(a, b))`.
    weight_tables: Vec<Vec<f64>>,
}

impl PriorEstimator {
    /// Build an estimator for `schema` with bandwidths `bandwidth` (one per
    /// QI attribute) and the paper's Epanechnikov kernel.
    pub fn new(schema: Arc<Schema>, bandwidth: Bandwidth) -> Self {
        Self::with_family(schema, bandwidth, KernelFamily::Epanechnikov)
    }

    /// Build with an explicit kernel family.
    pub fn with_family(schema: Arc<Schema>, bandwidth: Bandwidth, family: KernelFamily) -> Self {
        assert_eq!(
            bandwidth.len(),
            schema.qi_count(),
            "bandwidth dimension {} must equal the number of QI attributes {}",
            bandwidth.len(),
            schema.qi_count()
        );
        let weight_tables = (0..schema.qi_count())
            .map(|i| {
                let kernel = family.kernel(bandwidth.get(i));
                let dist = schema.qi_distance(i);
                let r = dist.size();
                let mut table = vec![0.0f64; r * r];
                for a in 0..r {
                    let row = dist.row(a as u32);
                    for (b, &d) in row.iter().enumerate() {
                        table[a * r + b] = kernel.weight(d);
                    }
                }
                table
            })
            .collect();
        PriorEstimator {
            schema,
            bandwidth,
            family,
            weight_tables,
        }
    }

    /// The bandwidth vector `B`.
    pub fn bandwidth(&self) -> &Bandwidth {
        &self.bandwidth
    }

    /// The kernel family in use.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Product kernel weight `Π_i K_i(d_i(a_i, b_i))` between two QI points.
    #[inline]
    fn pair_weight(&self, a: &[u32], b: &[u32]) -> f64 {
        let mut w = 1.0;
        for (i, table) in self.weight_tables.iter().enumerate() {
            let r = self.schema.qi_distance(i).size();
            w *= table[a[i] as usize * r + b[i] as usize];
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// Estimate the full prior model over every distinct QI combination in
    /// `table`, in parallel.
    pub fn estimate(&self, table: &Table) -> PriorModel {
        let m = self.schema.sensitive_domain_size();
        // Fold identical QI combinations.
        let folded = fold_table(table, m);
        let points: Vec<&FoldedPoint> = folded.iter().collect();
        let n_points = points.len();

        let table_distribution =
            Dist::new(table.sensitive_distribution()).expect("table distribution is valid");

        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(n_points.max(1));
        let chunk = n_points.div_ceil(threads);

        let mut results: Vec<Option<Dist>> = vec![None; n_points];
        std::thread::scope(|scope| {
            for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let points = &points;
                let fallback = &table_distribution;
                let this = &*self;
                scope.spawn(move || {
                    let start = t * chunk;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let q = points[start + off];
                        *slot = Some(this.estimate_folded(&q.qi, points, m, fallback));
                    }
                });
            }
        });

        let priors = folded
            .iter()
            .zip(results)
            .map(|(p, d)| (p.qi.clone(), d.expect("filled by thread")))
            .collect();
        PriorModel {
            priors,
            table_distribution,
        }
    }

    /// Estimate the prior at one (possibly unseen) QI point `q` against
    /// `table`.
    pub fn estimate_at(&self, table: &Table, q: &[u32]) -> Dist {
        assert_eq!(q.len(), self.schema.qi_count(), "QI arity mismatch");
        let m = self.schema.sensitive_domain_size();
        let folded = fold_table(table, m);
        let points: Vec<&FoldedPoint> = folded.iter().collect();
        let fallback =
            Dist::new(table.sensitive_distribution()).expect("table distribution is valid");
        self.estimate_folded(q, &points, m, &fallback)
    }

    fn estimate_folded(
        &self,
        q: &[u32],
        points: &[&FoldedPoint],
        m: usize,
        fallback: &Dist,
    ) -> Dist {
        let mut numer = vec![0.0f64; m];
        let mut denom = 0.0f64;
        for p in points {
            let w = self.pair_weight(q, &p.qi);
            if w > 0.0 {
                denom += w * p.count as f64;
                for (s, &c) in p.sensitive_counts.iter().enumerate() {
                    if c > 0 {
                        numer[s] += w * f64::from(c);
                    }
                }
            }
        }
        if denom <= 0.0 {
            // No point of the table inside the kernel support (possible only
            // for q outside the table with small bandwidths).
            return fallback.clone();
        }
        for x in numer.iter_mut() {
            *x /= denom;
        }
        Dist::new(numer).unwrap_or_else(|_| fallback.clone())
    }
}

/// A distinct QI combination with its multiplicity and sensitive histogram.
#[derive(Debug, Clone)]
struct FoldedPoint {
    qi: Box<[u32]>,
    count: u32,
    sensitive_counts: Vec<u32>,
}

fn fold_table(table: &Table, m: usize) -> Vec<FoldedPoint> {
    let mut map: HashMap<Box<[u32]>, FoldedPoint> = HashMap::new();
    for row in 0..table.len() {
        let qi: Box<[u32]> = table.qi(row).into();
        let s = table.sensitive_value(row) as usize;
        let entry = map.entry(qi.clone()).or_insert_with(|| FoldedPoint {
            qi,
            count: 0,
            sensitive_counts: vec![0; m],
        });
        entry.count += 1;
        entry.sensitive_counts[s] += 1;
    }
    let mut v: Vec<FoldedPoint> = map.into_values().collect();
    // Deterministic order (parallel chunking must be reproducible).
    v.sort_by(|a, b| a.qi.cmp(&b.qi));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::toy;

    fn hospital() -> Table {
        toy::hospital_table()
    }

    #[test]
    fn priors_are_distributions() {
        let t = hospital();
        let b = Bandwidth::uniform(0.3, 2).unwrap();
        let est = PriorEstimator::new(Arc::clone(t.schema()), b);
        let model = est.estimate(&t);
        assert!(!model.is_empty());
        for (_, p) in model.iter() {
            let sum: f64 = p.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.as_slice().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn uniform_kernel_full_bandwidth_gives_table_distribution() {
        // §II.D: uniform kernel with B = the whole (normalized) range makes
        // every tuple weight equal, so the prior is the table distribution.
        let t = hospital();
        let b = Bandwidth::uniform(1.0, 2).unwrap();
        let est = PriorEstimator::with_family(Arc::clone(t.schema()), b, KernelFamily::Uniform);
        let model = est.estimate(&t);
        let q = model.table_distribution();
        for (_, p) in model.iter() {
            assert!(
                p.max_abs_diff(q) < 1e-12,
                "prior {p} should equal table distribution {q}"
            );
        }
    }

    #[test]
    fn tiny_bandwidth_recovers_mle() {
        // B → 0: only exact QI matches carry weight, so the prior equals the
        // empirical distribution among tuples sharing the QI combination.
        let t = hospital();
        let b = Bandwidth::uniform(1e-6, 2).unwrap();
        let est = PriorEstimator::new(Arc::clone(t.schema()), b);
        let model = est.estimate(&t);
        // Row 2 (52, F, Flu) and row 8 (52, M, Gastritis) have unique QI
        // combos → point masses on their own sensitive values.
        let p = model.prior(t.qi(2)).unwrap();
        assert!((p.get(2) - 1.0).abs() < 1e-9, "expected point mass on Flu");
        let p8 = model.prior(t.qi(8)).unwrap();
        assert!((p8.get(3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_bandwidth_is_more_informed() {
        // The 69-year-old male (row 0) has Emphysema. A small-bandwidth
        // adversary assigns Emphysema higher prior probability at his QI
        // point than a large-bandwidth adversary.
        let t = hospital();
        let mk = |b: f64| {
            let est =
                PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(b, 2).unwrap());
            est.estimate(&t).prior(t.qi(0)).unwrap().clone()
        };
        let sharp = mk(0.15);
        let blurry = mk(1.0);
        assert!(
            sharp.get(0) > blurry.get(0),
            "sharp {} vs blurry {}",
            sharp.get(0),
            blurry.get(0)
        );
    }

    #[test]
    fn estimate_at_unseen_point_works() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.5, 2).unwrap());
        // Age 60 (code 20), M (code 1) is not in the table.
        let p = est.estimate_at(&t, &[20, 1]);
        let sum: f64 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_point_outside_support_falls_back() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(1e-6, 2).unwrap());
        let p = est.estimate_at(&t, &[0, 1]); // age 40, M — nothing within 1e-6
        assert!(p.max_abs_diff(&model_table_dist(&t)) < 1e-12);
    }

    fn model_table_dist(t: &Table) -> Dist {
        Dist::new(t.sensitive_distribution()).unwrap()
    }

    #[test]
    fn estimation_is_deterministic_across_runs() {
        let t = bgkanon_data::adult::generate(300, 5);
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 6).unwrap());
        let a = est.estimate(&t);
        let b = est.estimate(&t);
        for (qi, p) in a.iter() {
            assert!(p.max_abs_diff(b.prior(qi).unwrap()) < 1e-15);
        }
    }

    #[test]
    fn per_attribute_bandwidths_differ() {
        // Knowing Age precisely but Sex loosely differs from the converse.
        let t = hospital();
        let mk = |b: Vec<f64>| {
            let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::new(b).unwrap());
            est.estimate(&t).prior(t.qi(0)).unwrap().clone()
        };
        let age_sharp = mk(vec![0.1, 1.0]);
        let sex_sharp = mk(vec![1.0, 0.1]);
        assert!(age_sharp.max_abs_diff(&sex_sharp) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth dimension")]
    fn dimension_mismatch_panics() {
        let t = hospital();
        let _ = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 5).unwrap());
    }

    #[test]
    fn kernel_family_constructors() {
        assert_eq!(
            KernelFamily::Epanechnikov.kernel(0.5),
            Kernel::epanechnikov(0.5)
        );
        assert_eq!(KernelFamily::Uniform.kernel(0.5), Kernel::uniform(0.5));
        assert_eq!(
            KernelFamily::Triangular.kernel(0.5),
            Kernel::triangular(0.5)
        );
    }

    #[test]
    fn prior_model_fallback_for_unknown_combination() {
        let t = hospital();
        let est = PriorEstimator::new(Arc::clone(t.schema()), Bandwidth::uniform(0.3, 2).unwrap());
        let model = est.estimate(&t);
        // Age 70 (code 30) never occurs in the hospital table.
        let unknown = [30u32, 0u32];
        assert!(model.prior(&unknown).is_none());
        assert_eq!(
            model.prior_or_fallback(&unknown).as_slice(),
            model.table_distribution().as_slice()
        );
    }
}
