//! The background-knowledge parameter `B` (§II.C, §IV.A).
//!
//! `B = (B_1..B_d)` is a per-QI-attribute bandwidth vector over *normalized*
//! semantic distances, so each `B_i` lives naturally in `(0, 1]` (values
//! above 1 are allowed and simply widen the kernel past the domain range).
//! Smaller components mean a more knowledgeable adversary on that attribute.

use std::fmt;

/// A validated bandwidth vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Bandwidth(Vec<f64>);

impl Bandwidth {
    /// Build from per-attribute bandwidths; each must be positive and finite.
    pub fn new(b: Vec<f64>) -> Result<Self, BandwidthError> {
        if b.is_empty() {
            return Err(BandwidthError::Empty);
        }
        if let Some(&bad) = b
            .iter()
            .find(|&&x| x <= 0.0 || x.is_nan() || !x.is_finite())
        {
            return Err(BandwidthError::NonPositive(bad));
        }
        Ok(Bandwidth(b))
    }

    /// The same bandwidth `b` on all `d` attributes — the experiments'
    /// `B = (b, b, …, b)` convention.
    pub fn uniform(b: f64, d: usize) -> Result<Self, BandwidthError> {
        Bandwidth::new(vec![b; d])
    }

    /// Split-profile constructor used by Fig. 3(b): the first `split`
    /// attributes get `b1`, the rest get `b2`.
    pub fn split(b1: f64, b2: f64, split: usize, d: usize) -> Result<Self, BandwidthError> {
        if split > d {
            return Err(BandwidthError::BadSplit { split, d });
        }
        let mut v = vec![b1; d];
        for x in v.iter_mut().skip(split) {
            *x = b2;
        }
        Bandwidth::new(v)
    }

    /// Number of attributes `d`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Bandwidth of attribute `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

/// Errors constructing a [`Bandwidth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthError {
    /// Zero-length vector.
    Empty,
    /// A non-positive, NaN or infinite component.
    NonPositive(f64),
    /// `split > d` in [`Bandwidth::split`].
    BadSplit {
        /// Requested split point.
        split: usize,
        /// Dimension.
        d: usize,
    },
}

impl fmt::Display for BandwidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandwidthError::Empty => write!(f, "empty bandwidth vector"),
            BandwidthError::NonPositive(x) => {
                write!(f, "bandwidth components must be positive, got {x}")
            }
            BandwidthError::BadSplit { split, d } => {
                write!(f, "split point {split} exceeds dimension {d}")
            }
        }
    }
}

impl std::error::Error for BandwidthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_constructor() {
        let b = Bandwidth::uniform(0.3, 6).unwrap();
        assert_eq!(b.len(), 6);
        assert!(b.as_slice().iter().all(|&x| x == 0.3));
    }

    #[test]
    fn split_constructor_matches_fig3b() {
        let b = Bandwidth::split(0.2, 0.5, 3, 6).unwrap();
        assert_eq!(b.as_slice(), &[0.2, 0.2, 0.2, 0.5, 0.5, 0.5]);
        assert!(Bandwidth::split(0.2, 0.5, 7, 6).is_err());
    }

    #[test]
    fn validation() {
        assert_eq!(Bandwidth::new(vec![]), Err(BandwidthError::Empty));
        assert!(matches!(
            Bandwidth::new(vec![0.2, 0.0]),
            Err(BandwidthError::NonPositive(_))
        ));
        assert!(matches!(
            Bandwidth::new(vec![f64::NAN]),
            Err(BandwidthError::NonPositive(_))
        ));
        assert!(Bandwidth::new(vec![0.2, 1.5]).is_ok());
    }

    #[test]
    fn display() {
        let b = Bandwidth::uniform(0.25, 2).unwrap();
        assert_eq!(format!("{b}"), "B(0.25, 0.25)");
    }
}
