//! Negative association rule mining — the Injector approach (Li & Li,
//! ICDE 2008, the paper's reference \[7\]) that §II.B generalizes.
//!
//! A **negative association rule** is an implication
//! `qi-pattern ⇒ ¬ sensitive-value` that holds with 100% confidence in the
//! table: no individual matching the pattern carries the value (e.g. "male
//! ⇒ ¬ ovarian cancer"). Injector mines such rules and treats them as the
//! adversary's knowledge. The kernel framework subsumes them: a rule that
//! holds in the data forces the kernel-estimated prior at matching QI
//! points toward zero on the excluded value as the bandwidth shrinks —
//! [`verify_subsumption`] checks this quantitatively and is exercised in
//! tests and the ablation bench.
//!
//! Patterns here are single-attribute or pairwise (the useful range for
//! QI-correlation rules): `A_i = v` or `A_i = v ∧ A_j = w`.

use std::collections::HashMap;
use std::sync::Arc;

use bgkanon_data::{Parallelism, Table};

use crate::bandwidth::Bandwidth;
use crate::estimator::{FoldedTable, PriorEstimator};

/// A conjunctive QI pattern of one or two attribute-value equalities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    /// `(attribute index, code)` pairs, sorted by attribute index;
    /// length 1 or 2.
    pub terms: Vec<(usize, u32)>,
}

impl Pattern {
    /// Single-attribute pattern `A_i = v`.
    pub fn single(attr: usize, value: u32) -> Self {
        Pattern {
            terms: vec![(attr, value)],
        }
    }

    /// Pairwise pattern `A_i = v ∧ A_j = w` (`i < j` enforced by sorting).
    pub fn pair(a: (usize, u32), b: (usize, u32)) -> Self {
        assert_ne!(a.0, b.0, "pattern terms must use distinct attributes");
        let mut terms = vec![a, b];
        terms.sort_by_key(|t| t.0);
        Pattern { terms }
    }

    /// Does row `row` of `table` match the pattern?
    pub fn matches(&self, table: &Table, row: usize) -> bool {
        self.terms
            .iter()
            .all(|&(attr, value)| table.qi_value(row, attr) == value)
    }

    /// Does a bare QI code combination match the pattern? This is the form
    /// the folded (distinct-QI) paths use.
    pub fn matches_qi(&self, qi: &[u32]) -> bool {
        self.terms.iter().all(|&(attr, value)| qi[attr] == value)
    }

    /// Human-readable form against a schema.
    pub fn display(&self, table: &Table) -> String {
        let schema = table.schema();
        self.terms
            .iter()
            .map(|&(attr, value)| {
                let a = schema.qi_attribute(attr);
                format!("{}={}", a.name(), a.display_value(value))
            })
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

/// A mined negative association rule `pattern ⇒ ¬ sensitive_value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeRule {
    /// The antecedent QI pattern.
    pub pattern: Pattern,
    /// The excluded sensitive code.
    pub sensitive_value: u32,
    /// Number of rows matching the pattern (the rule's support base).
    pub support: usize,
}

/// Configuration for the miner.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// Minimum number of matching rows for a rule to be trusted — rules
    /// supported by a handful of rows are statistical accidents, not
    /// knowledge (Injector's support threshold).
    pub min_support: usize,
    /// Also mine pairwise (two-attribute) patterns.
    pub pairwise: bool,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: 50,
            pairwise: false,
        }
    }
}

/// Mine all negative association rules with 100% confidence from `table`.
///
/// For every pattern with at least `min_support` matching rows, emit a rule
/// for each sensitive value that never co-occurs with the pattern.
pub fn mine_negative_rules(table: &Table, config: &MiningConfig) -> Vec<NegativeRule> {
    let d = table.qi_count();
    let m = table.schema().sensitive_domain_size();
    let mut rules = Vec::new();

    // Single-attribute patterns: count (attr, value) → per-sensitive counts.
    for attr in 0..d {
        let r = table.schema().qi_attribute(attr).domain_size() as usize;
        let mut support = vec![0usize; r];
        let mut with_value = vec![0u64; r * m];
        for row in 0..table.len() {
            let v = table.qi_value(row, attr) as usize;
            support[v] += 1;
            with_value[v * m + table.sensitive_value(row) as usize] += 1;
        }
        for v in 0..r {
            if support[v] < config.min_support {
                continue;
            }
            for s in 0..m {
                if with_value[v * m + s] == 0 {
                    rules.push(NegativeRule {
                        pattern: Pattern::single(attr, v as u32),
                        sensitive_value: s as u32,
                        support: support[v],
                    });
                }
            }
        }
    }

    if config.pairwise {
        for a1 in 0..d {
            for a2 in (a1 + 1)..d {
                let mut counts: HashMap<(u32, u32), (usize, Vec<u64>)> = HashMap::new();
                for row in 0..table.len() {
                    let key = (table.qi_value(row, a1), table.qi_value(row, a2));
                    let entry = counts.entry(key).or_insert_with(|| (0, vec![0u64; m]));
                    entry.0 += 1;
                    entry.1[table.sensitive_value(row) as usize] += 1;
                }
                let mut keys: Vec<(u32, u32)> = counts.keys().copied().collect(); // bgk-allow: R3 keys collected then sorted on the next line
                keys.sort_unstable();
                for key in keys {
                    let (support, with_value) = &counts[&key];
                    if *support < config.min_support {
                        continue;
                    }
                    for (s, &count) in with_value.iter().enumerate() {
                        if count == 0 {
                            rules.push(NegativeRule {
                                pattern: Pattern::pair((a1, key.0), (a2, key.1)),
                                sensitive_value: s as u32,
                                support: *support,
                            });
                        }
                    }
                }
            }
        }
    }
    rules
}

/// Result of checking one rule against the kernel prior model.
#[derive(Debug, Clone)]
pub struct SubsumptionCheck {
    /// The rule under test.
    pub rule: NegativeRule,
    /// Largest prior probability the kernel adversary assigns to the
    /// excluded value at any matching QI point of the table.
    pub max_prior_on_excluded: f64,
}

/// Verify that the kernel framework subsumes mined rules (§II.B): estimate
/// the prior with bandwidth `b` and report, per rule, the worst-case prior
/// probability of the excluded value over all matching tuples. For
/// bandwidths small enough that the kernel support stays inside the
/// pattern's equivalence class, the probability is exactly 0.
///
/// The table is folded **once** into a [`FoldedTable`] shared by the
/// estimation pass and the per-rule scans (which walk the `u` distinct QI
/// points instead of all `n` rows — every row of a distinct point shares
/// its prior, so the worst case over points equals the worst case over
/// rows).
pub fn verify_subsumption(table: &Table, rules: &[NegativeRule], b: f64) -> Vec<SubsumptionCheck> {
    let estimator = PriorEstimator::new(
        Arc::clone(table.schema()),
        Bandwidth::uniform(b, table.qi_count()).expect("positive bandwidth"),
    );
    let model = estimator.estimate_folded(FoldedTable::new(table), Parallelism::Auto);
    let folded = model.folded().expect("estimate_folded retains the fold");
    rules
        .iter()
        .map(|rule| {
            let mut worst = 0.0f64;
            for point in folded.points() {
                if rule.pattern.matches_qi(point.qi()) {
                    let p = model.prior_or_fallback(point.qi());
                    worst = worst.max(p.get(rule.sensitive_value as usize));
                }
            }
            SubsumptionCheck {
                rule: rule.clone(),
                max_prior_on_excluded: worst,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgkanon_data::adult::{self, qi_index};

    #[test]
    fn armed_forces_rule_mined_from_adult() {
        // The generator gives Armed-Forces (occupation 13) a near-zero rate
        // for the 65+ band and for several workclasses, and Priv-house-serv
        // (11) is essentially female — some single-attribute exclusion must
        // appear at this scale.
        let t = adult::generate(20_000, 42);
        let rules = mine_negative_rules(&t, &MiningConfig::default());
        assert!(!rules.is_empty(), "expected some 100%-confidence rules");
        for r in &rules {
            // Re-verify the 100% confidence claim directly.
            for row in 0..t.len() {
                if r.pattern.matches(&t, row) {
                    assert_ne!(t.sensitive_value(row), r.sensitive_value);
                }
            }
            assert!(r.support >= 50);
        }
    }

    #[test]
    fn pairwise_mining_adds_rules() {
        let t = adult::generate(5_000, 7);
        let single = mine_negative_rules(&t, &MiningConfig::default());
        let both = mine_negative_rules(
            &t,
            &MiningConfig {
                pairwise: true,
                min_support: 50,
            },
        );
        assert!(both.len() >= single.len());
    }

    #[test]
    fn min_support_filters_accidental_rules() {
        let t = adult::generate(2_000, 8);
        let strict = mine_negative_rules(
            &t,
            &MiningConfig {
                min_support: 500,
                pairwise: false,
            },
        );
        let loose = mine_negative_rules(
            &t,
            &MiningConfig {
                min_support: 10,
                pairwise: false,
            },
        );
        assert!(loose.len() >= strict.len());
        for r in &strict {
            assert!(r.support >= 500);
        }
    }

    #[test]
    fn kernel_prior_subsumes_mined_rules_at_small_bandwidth() {
        // §II.B: knowledge that exists in the data should fall out of the
        // kernel estimate. With a bandwidth below every positive semantic
        // distance, matching tuples' priors put exactly 0 on excluded
        // values.
        let t = adult::generate(5_000, 42);
        let rules = mine_negative_rules(&t, &MiningConfig::default());
        assert!(!rules.is_empty());
        let checks = verify_subsumption(&t, &rules, 1e-6);
        for c in &checks {
            assert_eq!(
                c.max_prior_on_excluded, 0.0,
                "rule {:?} leaks prior mass",
                c.rule
            );
        }
        // At moderate bandwidth the exclusion softens — neighbouring QI
        // points inside the kernel support can reintroduce mass — but the
        // excluded values stay improbable on average and almost never
        // dominant. A single low-support rule whose pattern sits next to a
        // dense stratum of the excluded value can legitimately pick up
        // majority mass from its neighbours (the exact worst case depends
        // on the generator's RNG stream), so dominance (> 0.5) is bounded
        // as a rare exception rather than forbidden outright, and even the
        // exception must stay well short of certainty.
        let soft = verify_subsumption(&t, &rules, 0.2);
        let mean: f64 =
            soft.iter().map(|c| c.max_prior_on_excluded).sum::<f64>() / soft.len() as f64;
        assert!(mean < 0.1, "mean prior on excluded values {mean}");
        let dominant = soft
            .iter()
            .filter(|c| c.max_prior_on_excluded > 0.5)
            .count();
        assert!(
            dominant <= 1,
            "{dominant}/{} rules give the excluded value majority mass",
            soft.len()
        );
        for c in &soft {
            assert!(
                c.max_prior_on_excluded < 0.7,
                "rule {:?}: prior {}",
                c.rule,
                c.max_prior_on_excluded
            );
        }
    }

    #[test]
    fn pattern_helpers() {
        let t = adult::generate(100, 1);
        let p = Pattern::single(qi_index::GENDER, 0);
        let label = p.display(&t);
        assert!(label.contains("Gender=Female"), "{label}");
        let pair = Pattern::pair((qi_index::GENDER, 1), (qi_index::RACE, 0));
        assert_eq!(pair.terms[0].0, qi_index::RACE.min(qi_index::GENDER));
        for row in 0..t.len() {
            let m = p.matches(&t, row);
            assert_eq!(m, t.qi_value(row, qi_index::GENDER) == 0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct attributes")]
    fn pair_pattern_rejects_same_attribute() {
        let _ = Pattern::pair((1, 0), (1, 1));
    }
}
