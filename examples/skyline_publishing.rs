//! Skyline (B,t)-privacy publishing (§IV.A, Definition 2) with a utility
//! report.
//!
//! A single (B,t) pair defends against one adversary profile; the skyline
//! covers the whole spectrum: strong adversaries (small b) get loose
//! thresholds, weak adversaries tight ones. This example publishes under a
//! three-point skyline, verifies every point by audit, and prices the
//! protection in utility terms against a plain k-anonymous release.
//!
//! ```sh
//! cargo run --release --example skyline_publishing
//! ```

use bgkanon::prelude::*;
use bgkanon::utility;

fn main() {
    let table = bgkanon::data::adult::generate(2_500, 7);
    // The skyline: (b, t) pairs ordered from strongest to weakest adversary.
    let skyline = vec![(0.2, 0.35), (0.3, 0.25), (0.5, 0.15)];
    println!("skyline: {skyline:?}\n");

    let protected = Publisher::new()
        .k_anonymity(4)
        .skyline(skyline.clone())
        .publish(&table)
        .expect("satisfiable");
    let baseline = Publisher::new()
        .k_anonymity(4)
        .publish(&table)
        .expect("satisfiable");

    println!(
        "skyline release: {} groups in {:?}",
        protected.anonymized.group_count(),
        protected.elapsed
    );
    println!(
        "k-anonymity only: {} groups in {:?}\n",
        baseline.anonymized.group_count(),
        baseline.elapsed
    );

    // Verify each skyline point by an independent audit.
    println!("audits of the skyline release:");
    for &(b, t) in &skyline {
        let report = protected.audit_against(&table, b, t);
        println!(
            "  Adv(b'={b}): worst-case {:.4} ≤ t={t}  vulnerable={}",
            report.worst_case, report.vulnerable
        );
        assert!(report.worst_case <= t + 1e-9);
    }

    // The k-anonymous baseline is exposed to the same adversaries.
    println!("\naudits of the k-anonymity-only release:");
    for &(b, t) in &skyline {
        let report = baseline.audit_against(&table, b, t);
        println!(
            "  Adv(b'={b}): worst-case {:.4} (t={t})  vulnerable={}",
            report.worst_case, report.vulnerable
        );
    }

    // What does the protection cost in utility?
    let cfg = utility::WorkloadConfig {
        qd: 3,
        selectivity: 0.07,
        queries: 500,
        seed: 11,
    };
    let queries = utility::generate_queries(&table, &cfg);
    println!("\nutility comparison:");
    for (name, outcome) in [("skyline", &protected), ("k-anon only", &baseline)] {
        let dm = utility::discernibility(&outcome.anonymized);
        let gcp = utility::global_certainty_penalty(&outcome.anonymized);
        let err = utility::average_relative_error(&table, &outcome.anonymized, &queries)
            .expect("non-degenerate workload");
        println!("  {name:<12} DM {dm:>10}  GCP {gcp:>9.1}  query error {err:>5.1}%");
    }
}
