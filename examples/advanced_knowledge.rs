//! Advanced knowledge modeling: rule mining, relational adversaries,
//! bandwidth calibration and prior-model caching.
//!
//! Demonstrates the extensions the paper's text motivates beyond the core
//! evaluation: Injector-style negative association rules (§II.B), the
//! same-value-family relational knowledge of §VII's future work, and
//! publisher-side diagnostics for designing a skyline.
//!
//! ```sh
//! cargo run --release --example advanced_knowledge
//! ```

use bgkanon::inference::{relational_posteriors, RelationalKnowledge};
use bgkanon::knowledge::calibrate::{attribute_diagnostics, suggest_skyline};
use bgkanon::knowledge::mining::{mine_negative_rules, verify_subsumption, MiningConfig};
use bgkanon::knowledge::{load_model, save_model, PriorEstimator};
use bgkanon::prelude::*;
use std::sync::Arc;

fn main() {
    let table = bgkanon::data::adult::generate(5_000, 42);

    // 1. Which attributes leak the most about Occupation?
    println!("=== attribute → occupation correlation (mutual information) ===");
    for d in attribute_diagnostics(&table) {
        println!(
            "  {:<15} I = {:.4} bits ({:.1}% of H(S))",
            d.name,
            d.mutual_information,
            100.0 * d.normalized
        );
    }
    let skyline = suggest_skyline(&table, 0.15);
    println!("suggested starter skyline: {skyline:?}\n");

    // 2. Mine the 100%-confidence negative rules an Injector-style
    //    adversary would know, and confirm the kernel prior subsumes them.
    println!("=== negative association rules (Injector, ref [7]) ===");
    let rules = mine_negative_rules(&table, &MiningConfig::default());
    println!("{} rules mined; first three:", rules.len());
    let sensitive = table.schema().sensitive_attribute();
    for rule in rules.iter().take(3) {
        println!(
            "  {} ⇒ ¬{}   (support {})",
            rule.pattern.display(&table),
            sensitive.display_value(rule.sensitive_value),
            rule.support
        );
    }
    let checks = verify_subsumption(&table, &rules, 0.01);
    let worst = checks
        .iter()
        .map(|c| c.max_prior_on_excluded)
        .fold(0.0f64, f64::max);
    println!("kernel prior at b = 0.01: worst mass on any excluded value = {worst}\n");

    // 3. Relational knowledge (§VII): "either t0 or t1 has the rare value,
    //    but not both".
    println!("=== relational knowledge: same-value exclusion ===");
    let priors = vec![Dist::uniform(2); 3];
    let group = GroupPriors::new(priors, &[0, 0, 1]);
    let plain = bgkanon::inference::exact_posteriors(&group);
    let constrained =
        relational_posteriors(&group, &RelationalKnowledge::none().with_pair(0, 1, 0.0));
    println!(
        "P(value0 | t2): independent tuples {:.3} → with 'not both' constraint {:.3}",
        plain[2].get(0),
        constrained[2].get(0)
    );

    // 4. Cache an estimated prior model and reload it.
    println!("\n=== prior-model persistence ===");
    let estimator = PriorEstimator::new(
        Arc::clone(table.schema()),
        Bandwidth::uniform(0.3, table.qi_count()).unwrap(),
    );
    let model = estimator.estimate(&table);
    let mut cache = Vec::new();
    save_model(&model, &mut cache).expect("in-memory write");
    let reloaded = load_model(cache.as_slice()).expect("roundtrip");
    println!(
        "saved {} priors ({} KiB), reloaded {} priors — identical: {}",
        model.len(),
        cache.len() / 1024,
        reloaded.len(),
        model.iter().all(|(qi, p)| reloaded
            .prior(qi)
            .is_some_and(|q| p.max_abs_diff(q) < 1e-15))
    );
}
