//! Probabilistic background-knowledge attack simulation (§V.A, Fig. 1).
//!
//! Publishes the same synthetic Adult slice under four privacy models and
//! counts how many tuples each leaves vulnerable to adversaries of varying
//! strength — demonstrating that ℓ-diversity and t-closeness crumble under
//! background knowledge while (B,t)-privacy holds.
//!
//! ```sh
//! cargo run --release --example attack_simulation
//! ```

use std::sync::Arc;

use bgkanon::prelude::*;

fn main() {
    let n = 3_000;
    let table = bgkanon::data::adult::generate(n, 42);
    let params = bgkanon::params::PARA1; // k = ℓ = 3, t = 0.25, b = 0.3
    println!(
        "dataset: {n} tuples; parameters: k={} ℓ={} t={} b={}\n",
        params.k, params.l, params.t, params.b
    );

    let releases: Vec<(&str, PublishOutcome)> = vec![
        (
            "distinct ℓ-diversity",
            Publisher::new()
                .k_anonymity(params.k)
                .distinct_l_diversity(params.l)
                .publish(&table)
                .expect("satisfiable"),
        ),
        (
            "probabilistic ℓ-div",
            Publisher::new()
                .k_anonymity(params.k)
                .probabilistic_l_diversity(params.l)
                .publish(&table)
                .expect("satisfiable"),
        ),
        (
            "t-closeness",
            Publisher::new()
                .k_anonymity(params.k)
                .t_closeness(params.t)
                .publish(&table)
                .expect("satisfiable"),
        ),
        (
            "(B,t)-privacy",
            Publisher::new()
                .k_anonymity(params.k)
                .bt_privacy(params.b, params.t)
                .publish(&table)
                .expect("satisfiable"),
        ),
    ];

    // Attack each release with adversaries of increasing bandwidth
    // (decreasing knowledge), reusing one prior model per adversary.
    let measure = Arc::new(SmoothedJs::paper_default(
        table.schema().sensitive_distance(),
    ));
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "vulnerable tuples", "b'=0.2", "b'=0.3", "b'=0.4", "b'=0.5"
    );
    for (name, outcome) in &releases {
        let mut row = format!("{name:<22}");
        for b_prime in [0.2, 0.3, 0.4, 0.5] {
            let adversary = Arc::new(Adversary::kernel(
                &table,
                Bandwidth::uniform(b_prime, table.qi_count()).unwrap(),
            ));
            let auditor = Auditor::new(adversary, Arc::clone(&measure) as _);
            let report = outcome.audit_with(&table, &auditor, params.t);
            row.push_str(&format!(" {:>10}", report.vulnerable));
        }
        println!("{row}");
    }
    println!(
        "\nThe (B,t)-private release should show far fewer vulnerable tuples\n\
         (zero against the b' = 0.3 adversary it was built for)."
    );
}
