//! The paper's running example, end to end.
//!
//! Reproduces §I (Table I: Bob and the emphysema correlation), §III.B
//! (the HIV posterior jumping from 0.3 to 0.8) and Table III (the
//! Ω-estimate's inexactness), printing each step.
//!
//! ```sh
//! cargo run --release --example hospital
//! ```

use bgkanon::prelude::*;

fn main() {
    intro_attack();
    hiv_example();
    table_iii_example();
}

/// §I: the adversary knows Bob is a 69-year-old male; correlational
/// knowledge (emphysema is more prevalent among older males) breaks the
/// 3-diverse release.
fn intro_attack() {
    println!("=== Table I: correlational knowledge about Bob ===");
    let table = bgkanon::data::toy::hospital_table();
    let groups = bgkanon::data::toy::hospital_groups();

    // Without background knowledge every tuple in Bob's group is Emphysema
    // with probability 1/3.
    let ignorant = Adversary::t_closeness(&table);
    // A knowledgeable adversary estimated from the data with bandwidth 0.2.
    let informed = Adversary::kernel(&table, Bandwidth::uniform(0.2, 2).unwrap());

    let bob_qi = table.qi(0); // 69, M
    println!(
        "prior P(Emphysema | Bob) — ignorant: {:.3}, informed Adv(0.2): {:.3}",
        ignorant.prior(&bob_qi).get(0),
        informed.prior(&bob_qi).get(0)
    );

    // Posterior after seeing the 3-diverse release (first group of
    // Table I(b)).
    for (label, adv) in [("ignorant", &ignorant), ("informed", &informed)] {
        let gp = GroupPriors::from_table_rows(&table, &groups[0], |qi| adv.prior(qi).clone());
        let post = omega_posteriors(&gp);
        println!(
            "posterior P(Emphysema | Bob) — {label}: {:.3}",
            post[0].get(0)
        );
    }
    println!();
}

/// §III.B: the worked three-tuple HIV example.
fn hiv_example() {
    println!("=== §III.B: posterior via Bayesian inference ===");
    let (priors, codes) = bgkanon::data::toy::hiv_example_priors();
    let priors: Vec<Dist> = priors
        .into_iter()
        .map(|p| Dist::new(p).expect("paper distributions are valid"))
        .collect();
    println!("prior P(HIV | t3) = {:.2}", priors[2].get(0));
    let group = GroupPriors::new(priors, &codes);
    let exact = exact_posteriors(&group);
    println!(
        "exact posterior P(HIV | t3) = {:.3}  (the paper reports 0.8)",
        exact[2].get(0)
    );
    let omega = omega_posteriors(&group);
    println!("Ω-estimate  P(HIV | t3) = {:.3}", omega[2].get(0));
    println!();
}

/// Table III: priors under which the Ω-estimate is visibly inexact.
fn table_iii_example() {
    println!("=== Table III: Ω-estimate inexactness ===");
    let (priors, codes) = bgkanon::data::toy::hiv_example_priors_zero();
    let priors: Vec<Dist> = priors
        .into_iter()
        .map(|p| Dist::new(p).expect("paper distributions are valid"))
        .collect();
    let group = GroupPriors::new(priors, &codes);
    let exact = exact_posteriors(&group);
    let omega = omega_posteriors(&group);
    println!(
        "exact P(HIV | t3) = {:.2}, Ω-estimate = {:.2}  (paper: 1.00 vs 0.66)",
        exact[2].get(0),
        omega[2].get(0)
    );
}
