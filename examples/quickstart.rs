//! Quickstart: anonymize a table under skyline (B,t)-privacy and inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgkanon::prelude::*;

fn main() {
    // A synthetic slice of the UCI Adult dataset (Table IV schema: six QI
    // attributes, Occupation sensitive). Swap in
    // `bgkanon::data::adult::load_adult_csv` to use the real file.
    let table = bgkanon::data::adult::generate(2_000, 42);
    println!(
        "table: {} tuples, {} QI attributes, sensitive domain of {}",
        table.len(),
        table.qi_count(),
        table.schema().sensitive_domain_size()
    );

    // Publish under k-anonymity plus (B,t)-privacy: protect against the
    // adversary Adv(B = 0.3·1) learning more than t = 0.25 about anyone.
    let outcome = Publisher::new()
        .k_anonymity(4)
        .bt_privacy(0.3, 0.25)
        .publish(&table)
        .expect("the requirement is satisfiable on this data");

    println!("requirement: {}", outcome.requirement_name);
    println!(
        "published {} groups (avg size {:.1}) in {:?}",
        outcome.anonymized.group_count(),
        outcome.anonymized.average_group_size(),
        outcome.elapsed
    );

    // Show a few published groups with generalized QI labels.
    println!("\nfirst three published groups:");
    for line in outcome.anonymized.render().lines().take(3) {
        println!("  {line}");
    }

    // Audit: replay the background-knowledge attack with the same adversary.
    let report = outcome.audit_against(&table, 0.3, 0.25);
    println!(
        "\naudit vs Adv(b'=0.3): worst-case risk {:.4}, mean {:.4}, vulnerable {}/{}",
        report.worst_case,
        report.mean,
        report.vulnerable,
        table.len()
    );

    // Utility: discernibility and certainty penalties, plus query accuracy.
    let dm = bgkanon::utility::discernibility(&outcome.anonymized);
    let gcp = bgkanon::utility::global_certainty_penalty(&outcome.anonymized);
    let cfg = bgkanon::utility::WorkloadConfig::default();
    let queries = bgkanon::utility::generate_queries(&table, &cfg);
    let err = bgkanon::utility::average_relative_error(&table, &outcome.anonymized, &queries)
        .expect("workload has non-zero answers");
    println!("utility: DM {dm}, GCP {gcp:.1}, aggregate-query error {err:.1}%");
}
